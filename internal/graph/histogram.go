package graph

import "sort"

// DegreeHistogram returns the distribution of distinct-neighbor degrees:
// hist[d] = number of nodes with degree d (as a sorted slice of (degree,
// count) pairs to keep sparse high-degree tails compact).
type DegreeBucket struct {
	Degree int
	Count  int
}

// DegreeHistogram computes the distinct-degree histogram of a static view.
func (v *StaticView) DegreeHistogram() []DegreeBucket {
	counts := make(map[int]int)
	for u := 0; u < v.NumNodes(); u++ {
		counts[v.Degree(NodeID(u))]++
	}
	out := make([]DegreeBucket, 0, len(counts))
	for d, c := range counts {
		out = append(out, DegreeBucket{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// MaxDegree returns the largest distinct-neighbor degree in the view.
func (v *StaticView) MaxDegree() int {
	best := 0
	for u := 0; u < v.NumNodes(); u++ {
		if d := v.Degree(NodeID(u)); d > best {
			best = d
		}
	}
	return best
}

// TimestampHistogram returns the number of multi-edges per timestamp,
// sorted by timestamp.
type TimestampBucket struct {
	Ts    Timestamp
	Count int
}

// TimestampHistogram computes the per-timestamp link counts of the graph.
func (g *Graph) TimestampHistogram() []TimestampBucket {
	counts := make(map[Timestamp]int)
	for e := range g.Edges() {
		counts[e.Ts]++
	}
	out := make([]TimestampBucket, 0, len(counts))
	for ts, c := range counts {
		out = append(out, TimestampBucket{Ts: ts, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

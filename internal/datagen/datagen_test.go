package datagen

import (
	"errors"
	"testing"

	"ssflp/internal/graph"
)

func TestValidation(t *testing.T) {
	base := Config{Nodes: 20, Edges: 50, TimeSpan: 10, Model: ModelActivityRepeat}
	cases := []func(Config) Config{
		func(c Config) Config { c.Nodes = 2; return c },
		func(c Config) Config { c.Edges = 0; return c },
		func(c Config) Config { c.TimeSpan = 0; return c },
		func(c Config) Config { c.Model = ModelKind(9); return c },
		func(c Config) Config { c.RepeatProb = 1.5; return c },
		func(c Config) Config { c.ClosureProb = -0.1; return c },
		func(c Config) Config { c.Model = ModelCommunityTriadic; c.Communities = 0; return c },
	}
	for i, mut := range cases {
		if _, err := Generate(mut(base)); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestGenerateMeetsConfiguredStatistics(t *testing.T) {
	cfgs := []Config{
		{Name: "ar", Nodes: 40, Edges: 400, TimeSpan: 20, Model: ModelActivityRepeat, RepeatProb: 0.7, Gamma: 0.8, Seed: 1},
		{Name: "ct", Nodes: 60, Edges: 300, TimeSpan: 10, Model: ModelCommunityTriadic, ClosureProb: 0.5, Communities: 5, Gamma: 0.5, Seed: 2},
		{Name: "rs", Nodes: 80, Edges: 250, TimeSpan: 30, Model: ModelReplyStar, RepeatProb: 0.3, Gamma: 0.7, Seed: 3},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.Name, func(t *testing.T) {
			g, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := g.Statistics()
			if s.NumNodes != cfg.Nodes {
				t.Errorf("nodes = %d, want %d", s.NumNodes, cfg.Nodes)
			}
			if s.NumEdges != cfg.Edges {
				t.Errorf("edges = %d, want %d", s.NumEdges, cfg.Edges)
			}
			if g.MinTimestamp() < 1 || g.MaxTimestamp() > graph.Timestamp(cfg.TimeSpan) {
				t.Errorf("timestamps [%d, %d] outside [1, %d]",
					g.MinTimestamp(), g.MaxTimestamp(), cfg.TimeSpan)
			}
			if g.MaxTimestamp() != graph.Timestamp(cfg.TimeSpan) {
				t.Errorf("max timestamp = %d, want span %d (needed for the split)",
					g.MaxTimestamp(), cfg.TimeSpan)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Nodes: 30, Edges: 200, TimeSpan: 15, Model: ModelReplyStar, RepeatProb: 0.3, Gamma: 0.5, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := collect(a), collect(b)
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ for identical seeds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := Config{Nodes: 30, Edges: 200, TimeSpan: 15, Model: ModelActivityRepeat, RepeatProb: 0.5, Seed: 1}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := collect(a), collect(b)
	same := len(ea) == len(eb)
	if same {
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func collect(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	for e := range g.Edges() {
		out = append(out, e)
	}
	return out
}

func TestActivityRepeatProducesMultiEdges(t *testing.T) {
	cfg := Config{Nodes: 20, Edges: 300, TimeSpan: 30, Model: ModelActivityRepeat, RepeatProb: 0.8, Gamma: 0.8, Seed: 5}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Static()
	if v.NumPairs() >= g.NumEdges() {
		t.Errorf("expected heavy multi-edges: %d distinct pairs for %d edges",
			v.NumPairs(), g.NumEdges())
	}
}

func TestReplyStarIsHubDominated(t *testing.T) {
	cfg := Config{Nodes: 200, Edges: 600, TimeSpan: 40, Model: ModelReplyStar, RepeatProb: 0.2, Gamma: 0.8, Seed: 7}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Max degree should dwarf the average in a PA network.
	maxDeg, sum := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		d := g.MultiDegree(graph.NodeID(u))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.NumNodes())
	if float64(maxDeg) < 5*avg {
		t.Errorf("max degree %d not hub-like vs avg %.1f", maxDeg, avg)
	}
}

func TestCommunityTriadicStaysLocal(t *testing.T) {
	cfg := Config{Nodes: 90, Edges: 500, TimeSpan: 20, Model: ModelCommunityTriadic,
		ClosureProb: 0.5, Communities: 3, Gamma: 0.3, Seed: 11}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the community assignment by regenerating the generator's RNG
	// stream is fragile; instead check clustering via triangle density:
	// community+closure graphs should have many triangles.
	v := g.Static()
	triangles := 0
	for u := 0; u < v.NumNodes(); u++ {
		for _, w := range v.Neighbors(graph.NodeID(u)) {
			if w <= graph.NodeID(u) {
				continue
			}
			for c := range v.CommonNeighbors(graph.NodeID(u), w) {
				if c > w {
					triangles++
				}
			}
		}
	}
	if triangles < 20 {
		t.Errorf("triangles = %d, expected a clustered graph", triangles)
	}
}

func TestTableIIConfigs(t *testing.T) {
	cfgs := TableII(1)
	if len(cfgs) != 7 {
		t.Fatalf("TableII returned %d configs, want 7", len(cfgs))
	}
	want := map[string][3]int64{
		EuEmail:  {309, 61046, 803},
		Contact:  {274, 28245, 96},
		Facebook: {4313, 42346, 366},
		Coauthor: {744, 7034, 20},
		Prosper:  {1264, 8874, 60},
		Slashdot: {2680, 9904, 240},
		Digg:     {3215, 9618, 240},
	}
	for _, c := range cfgs {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", c.Name)
			continue
		}
		if int64(c.Nodes) != w[0] || int64(c.Edges) != w[1] || c.TimeSpan != w[2] {
			t.Errorf("%s = (%d, %d, %d), want %v", c.Name, c.Nodes, c.Edges, c.TimeSpan, w)
		}
		if err := c.validate(); err != nil {
			t.Errorf("%s config invalid: %v", c.Name, err)
		}
	}
	if len(Names()) != 7 {
		t.Error("Names() should list 7 datasets")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName(Coauthor, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Model != ModelCommunityTriadic {
		t.Errorf("Co-author model = %v", c.Model)
	}
	if _, err := ByName("nope", 3); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestScale(t *testing.T) {
	c, err := ByName(EuEmail, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Scale(c, 10)
	if s.Nodes != 30 || s.Edges != 6104 || s.TimeSpan != 80 {
		t.Errorf("Scale = (%d, %d, %d)", s.Nodes, s.Edges, s.TimeSpan)
	}
	if Scale(c, 1) != c {
		t.Error("Scale by 1 should be identity")
	}
	tiny := Scale(Config{Nodes: 12, Edges: 40, TimeSpan: 6}, 100)
	if tiny.Nodes < 10 || tiny.Edges < 30 || tiny.TimeSpan < 5 {
		t.Errorf("Scale floors violated: %+v", tiny)
	}
}

func TestScaledTableIIGeneratesEverywhere(t *testing.T) {
	for _, cfg := range TableII(9) {
		cfg := Scale(cfg, 50)
		t.Run(cfg.Name, func(t *testing.T) {
			g, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() != cfg.Edges {
				t.Errorf("edges = %d, want %d", g.NumEdges(), cfg.Edges)
			}
		})
	}
}

func TestModelKindString(t *testing.T) {
	if ModelActivityRepeat.String() != "activity-repeat" ||
		ModelCommunityTriadic.String() != "community-triadic" ||
		ModelReplyStar.String() != "reply-star" ||
		ModelKind(9).String() != "ModelKind(9)" {
		t.Error("ModelKind.String mismatch")
	}
}

func TestFinalBurstConcentratesEdges(t *testing.T) {
	cfg := Config{Nodes: 40, Edges: 1000, TimeSpan: 20, Model: ModelReplyStar,
		RepeatProb: 0.3, FinalBurst: 0.2, Seed: 13}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atLast := 0
	for e := range g.Edges() {
		if e.Ts == graph.Timestamp(cfg.TimeSpan) {
			atLast++
		}
	}
	if atLast < 180 || atLast > 220 {
		t.Errorf("edges at last timestamp = %d, want ~200 (20%% burst)", atLast)
	}
	if g.NumEdges() != cfg.Edges {
		t.Errorf("total edges = %d, want %d", g.NumEdges(), cfg.Edges)
	}
}

func TestBurstAndRecencyValidation(t *testing.T) {
	base := Config{Nodes: 20, Edges: 50, TimeSpan: 10, Model: ModelActivityRepeat}
	bad := base
	bad.FinalBurst = 0.9
	if _, err := Generate(bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("burst=0.9 error = %v", err)
	}
	bad = base
	bad.Recency = -0.1
	if _, err := Generate(bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("recency=-0.1 error = %v", err)
	}
}

func TestRecencyBiasesRepeats(t *testing.T) {
	// With full recency, repeat partners come from the recent window; the
	// multigraph should still be valid and deterministic.
	cfg := Config{Nodes: 30, Edges: 400, TimeSpan: 20, Model: ModelActivityRepeat,
		RepeatProb: 0.8, Recency: 1.0, Seed: 17}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != cfg.Edges || b.NumEdges() != cfg.Edges {
		t.Error("edge counts wrong under recency")
	}
	ea, eb := collect(a), collect(b)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("recency generation not deterministic")
		}
	}
}

package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	var out strings.Builder
	for {
		n, _ := r.Read(buf)
		if n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	return out.String(), runErr
}

func TestRunRolling(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-dataset", "Slashdot", "-scale", "40", "-cuts", "2",
			"-methods", "CN", "-maxpos", "10", "-epochs", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rolling evaluation", "cut t<=", "means over cuts", "CN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRollingErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{"-dataset", "Slashdot", "-scale", "40", "-methods", "nope"}); err == nil {
		t.Error("unknown method should fail")
	}
}

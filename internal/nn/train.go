package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// grads accumulates per-layer gradients for one mini-batch.
type grads struct {
	w [][]float64
	b [][]float64
}

func newGrads(layers []layer) *grads {
	g := &grads{w: make([][]float64, len(layers)), b: make([][]float64, len(layers))}
	for i, l := range layers {
		g.w[i] = make([]float64, len(l.w))
		g.b[i] = make([]float64, len(l.b))
	}
	return g
}

func (g *grads) zero() {
	for i := range g.w {
		clear(g.w[i])
		clear(g.b[i])
	}
}

// optimizerState carries momentum / Adam moment buffers.
type optimizerState struct {
	vw, vb [][]float64 // first moment / velocity
	sw, sb [][]float64 // second moment (Adam)
	step   int
}

func newOptimizerState(layers []layer, kind OptimizerKind) *optimizerState {
	st := &optimizerState{
		vw: make([][]float64, len(layers)),
		vb: make([][]float64, len(layers)),
	}
	for i, l := range layers {
		st.vw[i] = make([]float64, len(l.w))
		st.vb[i] = make([]float64, len(l.b))
	}
	if kind == Adam {
		st.sw = make([][]float64, len(layers))
		st.sb = make([][]float64, len(layers))
		for i, l := range layers {
			st.sw[i] = make([]float64, len(l.w))
			st.sb[i] = make([]float64, len(l.b))
		}
	}
	return st
}

// Train fits the network on samples x (each a feature vector) with integer
// class labels y. It may be called once per Network instance; the paper's
// configuration is epochs=2000, batch=10, lr=0.001.
func (n *Network) Train(x [][]float64, y []int) error {
	if len(x) == 0 {
		return ErrNoData
	}
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d samples but %d labels", ErrBadShape, len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return fmt.Errorf("%w: empty feature vectors", ErrBadShape)
	}
	for i, xi := range x {
		if len(xi) != dim {
			return fmt.Errorf("%w: sample %d has %d features, want %d", ErrBadShape, i, len(xi), dim)
		}
		if y[i] < 0 || y[i] >= n.cfg.Classes {
			return fmt.Errorf("%w: label %d outside [0, %d)", ErrBadShape, y[i], n.cfg.Classes)
		}
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed))
	n.initLayers(dim, rng)
	st := newOptimizerState(n.layers, n.cfg.Optimizer)
	g := newGrads(n.layers)

	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Validation holdout for early stopping; skipped when the sample set is
	// too small to spare one.
	var valIdx []int
	if n.cfg.EarlyStop {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nVal := int(n.cfg.ValFraction * float64(len(idx)))
		if nVal >= 4 && len(idx)-nVal >= 4 {
			valIdx = idx[:nVal]
			idx = idx[nVal:]
		}
	}
	bestLoss := math.Inf(1)
	var bestWeights [][]float64
	var bestBiases [][]float64
	stale := 0
	activations := make([][]float64, len(n.layers)+1)
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += n.cfg.BatchSize {
			end := min(start+n.cfg.BatchSize, len(idx))
			g.zero()
			for _, s := range idx[start:end] {
				n.backprop(x[s], y[s], g, activations)
			}
			n.apply(g, st, end-start)
		}
		if valIdx == nil {
			continue
		}
		if vloss := n.lossOn(x, y, valIdx); vloss < bestLoss-1e-9 {
			bestLoss = vloss
			bestWeights, bestBiases = n.snapshot(bestWeights, bestBiases)
			stale = 0
		} else if stale++; stale > n.cfg.Patience {
			break
		}
	}
	if bestWeights != nil {
		n.restore(bestWeights, bestBiases)
	}
	n.trained = true
	return nil
}

// lossOn computes the mean cross-entropy on an index subset (usable before
// the network is marked trained).
func (n *Network) lossOn(x [][]float64, y []int, idx []int) float64 {
	var total float64
	for _, s := range idx {
		_, probs := n.forward(x[s], nil)
		total += -math.Log(math.Max(probs[y[s]], 1e-15))
	}
	return total / float64(len(idx))
}

// snapshot copies the current weights into the provided buffers
// (allocating them on first use).
func (n *Network) snapshot(w, b [][]float64) ([][]float64, [][]float64) {
	if w == nil {
		w = make([][]float64, len(n.layers))
		b = make([][]float64, len(n.layers))
		for i, l := range n.layers {
			w[i] = make([]float64, len(l.w))
			b[i] = make([]float64, len(l.b))
		}
	}
	for i, l := range n.layers {
		copy(w[i], l.w)
		copy(b[i], l.b)
	}
	return w, b
}

// restore writes snapshotted weights back into the layers.
func (n *Network) restore(w, b [][]float64) {
	for i := range n.layers {
		copy(n.layers[i].w, w[i])
		copy(n.layers[i].b, b[i])
	}
}

// backprop accumulates the gradient of the cross-entropy loss for one
// sample into g.
func (n *Network) backprop(x []float64, label int, g *grads, activations [][]float64) {
	activations, probs := n.forward(x, activations)
	// Softmax + cross-entropy gradient on logits: p - onehot.
	last := len(n.layers) - 1
	delta := make([]float64, n.layers[last].out)
	copy(delta, probs)
	delta[label]--
	for li := last; li >= 0; li-- {
		l := &n.layers[li]
		in := activations[li]
		gw := g.w[li]
		gb := g.b[li]
		for o := 0; o < l.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gb[o] += d
			row := gw[o*l.in : (o+1)*l.in]
			for i, xv := range in {
				row[i] += d * xv
			}
		}
		if li == 0 {
			break
		}
		// Propagate: deltaPrev = Wᵀ delta, gated by the ReLU mask of the
		// previous activation.
		prev := make([]float64, l.in)
		for o := 0; o < l.out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := l.w[o*l.in : (o+1)*l.in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if activations[li][i] <= 0 { // ReLU derivative
				prev[i] = 0
			}
		}
		delta = prev
	}
}

// apply performs one optimizer step with batch-averaged gradients.
func (n *Network) apply(g *grads, st *optimizerState, batch int) {
	lr := n.cfg.LearningRate
	wd := n.cfg.WeightDecay
	inv := 1 / float64(batch)
	switch n.cfg.Optimizer {
	case SGD:
		mu := n.cfg.Momentum
		for li := range n.layers {
			l := &n.layers[li]
			for i := range l.w {
				st.vw[li][i] = mu*st.vw[li][i] - lr*(g.w[li][i]*inv+wd*l.w[i])
				l.w[i] += st.vw[li][i]
			}
			for i := range l.b {
				st.vb[li][i] = mu*st.vb[li][i] - lr*g.b[li][i]*inv
				l.b[i] += st.vb[li][i]
			}
		}
	case Adam:
		const (
			beta1 = 0.9
			beta2 = 0.999
			eps   = 1e-8
		)
		st.step++
		c1 := 1 - math.Pow(beta1, float64(st.step))
		c2 := 1 - math.Pow(beta2, float64(st.step))
		for li := range n.layers {
			l := &n.layers[li]
			for i := range l.w {
				grad := g.w[li][i] * inv
				st.vw[li][i] = beta1*st.vw[li][i] + (1-beta1)*grad
				st.sw[li][i] = beta2*st.sw[li][i] + (1-beta2)*grad*grad
				// Decoupled weight decay (AdamW).
				l.w[i] -= lr * ((st.vw[li][i]/c1)/(math.Sqrt(st.sw[li][i]/c2)+eps) + wd*l.w[i])
			}
			for i := range l.b {
				grad := g.b[li][i] * inv
				st.vb[li][i] = beta1*st.vb[li][i] + (1-beta1)*grad
				st.sb[li][i] = beta2*st.sb[li][i] + (1-beta2)*grad*grad
				l.b[i] -= lr * (st.vb[li][i] / c1) / (math.Sqrt(st.sb[li][i]/c2) + eps)
			}
		}
	}
}

// PredictProba returns the class probability distribution for a feature
// vector.
func (n *Network) PredictProba(x []float64) ([]float64, error) {
	if !n.trained {
		return nil, ErrNotTrained
	}
	if len(x) != n.inDim {
		return nil, fmt.Errorf("%w: got %d features, trained on %d", ErrBadShape, len(x), n.inDim)
	}
	_, probs := n.forward(x, nil)
	return probs, nil
}

// Score returns the probability of the positive class (label 1), the score
// the evaluation harness ranks candidate links by.
func (n *Network) Score(x []float64) (float64, error) {
	p, err := n.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return p[1], nil
}

// Loss computes the mean cross-entropy of the network on a labeled set
// (exposed for convergence tests).
func (n *Network) Loss(x [][]float64, y []int) (float64, error) {
	if !n.trained {
		return 0, ErrNotTrained
	}
	if len(x) == 0 {
		return 0, ErrNoData
	}
	var total float64
	for i, xi := range x {
		p, err := n.PredictProba(xi)
		if err != nil {
			return 0, err
		}
		total += -math.Log(math.Max(p[y[i]], 1e-15))
	}
	return total / float64(len(x)), nil
}

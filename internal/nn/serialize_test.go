package nn

import (
	"encoding/json"
	"errors"
	"testing"
)

func trainedNet(t *testing.T) *Network {
	t.Helper()
	x, y := xorData()
	n, err := New(Config{Hidden: []int{6}, Epochs: 50, BatchSize: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Train(x, y); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestStateRequiresTraining(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.State(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("State before train error = %v", err)
	}
}

func TestStateRoundTripThroughJSON(t *testing.T) {
	n := trainedNet(t)
	st, err := n.State()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	n2, err := FromState(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.3, 0.7}} {
		a, err := n.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := n2.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("proba differs at %v: %v vs %v", x, a, b)
			}
		}
	}
}

func TestStateIsDeepCopy(t *testing.T) {
	n := trainedNet(t)
	st, err := n.State()
	if err != nil {
		t.Fatal(err)
	}
	before, err := n.Score([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	st.Layers[0].Weights[0] = 999
	after, err := n.Score([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("mutating the snapshot changed the live network")
	}
}

func TestFromStateValidation(t *testing.T) {
	cases := []*State{
		nil,
		{},
		{InDim: 0, Classes: 2, Layers: []LayerState{{In: 1, Out: 2}}},
		{InDim: 2, Classes: 2, Layers: []LayerState{
			{In: 3, Out: 2, Weights: make([]float64, 6), Biases: make([]float64, 2)},
		}}, // wrong fan-in
		{InDim: 2, Classes: 2, Layers: []LayerState{
			{In: 2, Out: 2, Weights: make([]float64, 3), Biases: make([]float64, 2)},
		}}, // wrong weight count
		{InDim: 2, Classes: 2, Layers: []LayerState{
			{In: 2, Out: 3, Weights: make([]float64, 6), Biases: make([]float64, 3)},
		}}, // output width != classes
		{InDim: 2, Classes: 2, Layers: []LayerState{
			{In: 2, Out: 2, Weights: make([]float64, 4), Biases: make([]float64, 2), ReLU: true},
		}}, // relu on output layer
	}
	for i, st := range cases {
		if _, err := FromState(st); !errors.Is(err, ErrBadState) {
			t.Errorf("case %d: error = %v, want ErrBadState", i, err)
		}
	}
}

func TestScalerStateRoundTrip(t *testing.T) {
	s, err := FitStandardizer([][]float64{{1, 5}, {3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	st := s.State()
	s2, err := ScalerFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Transform([]float64{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Transform([]float64{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("scaler round trip differs: %v vs %v", a, b)
	}
}

func TestScalerFromStateValidation(t *testing.T) {
	if _, err := ScalerFromState(ScalerState{}); !errors.Is(err, ErrBadState) {
		t.Errorf("empty scaler error = %v", err)
	}
	if _, err := ScalerFromState(ScalerState{Mean: []float64{0}, Std: []float64{0}}); !errors.Is(err, ErrBadState) {
		t.Errorf("zero std error = %v", err)
	}
	if _, err := ScalerFromState(ScalerState{Mean: []float64{0, 1}, Std: []float64{1}}); !errors.Is(err, ErrBadState) {
		t.Errorf("mismatched scaler error = %v", err)
	}
}

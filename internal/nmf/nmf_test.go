package nmf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ssflp/internal/graph"
)

func twoCliques(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	add := func(u, v int) {
		t.Helper()
		if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Clique {0..3} and clique {4..7}, bridged by 3-4.
	for c := 0; c < 2; c++ {
		base := c * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				add(base+i, base+j)
			}
		}
	}
	add(3, 4)
	return g
}

func TestTrainValidation(t *testing.T) {
	g := twoCliques(t)
	v := g.Static()
	if _, err := Train(v, Options{Rank: -1}); !errors.Is(err, ErrBadRank) {
		t.Errorf("rank=-1 error = %v", err)
	}
	if _, err := Train(v, Options{Iterations: -5}); !errors.Is(err, ErrBadIterations) {
		t.Errorf("iterations=-5 error = %v", err)
	}
	empty := graph.New(0)
	if _, err := Train(empty.Static(), Options{}); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestTrainReducesReconstructionError(t *testing.T) {
	g := twoCliques(t)
	v := g.Static()
	short, err := Train(v, Options{Rank: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(v, Options{Rank: 4, Iterations: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e1, e2 := short.ReconstructionError(v), long.ReconstructionError(v); e2 >= e1 {
		t.Errorf("error did not decrease: 1 iter = %v, 200 iters = %v", e1, e2)
	}
}

func TestScoreSeparatesCommunities(t *testing.T) {
	g := twoCliques(t)
	v := g.Static()
	m, err := Train(v, Options{Rank: 4, Iterations: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	intra := m.Score(0, 2) // same clique (existing link reconstructed high)
	inter := m.Score(0, 6) // across cliques
	if intra <= inter {
		t.Errorf("intra-community score %v should exceed inter-community %v", intra, inter)
	}
}

func TestScoreSymmetricAndBounded(t *testing.T) {
	g := twoCliques(t)
	m, err := Train(g.Static(), Options{Rank: 3, Iterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		x := graph.NodeID(rng.Intn(8))
		y := graph.NodeID(rng.Intn(8))
		a, b := m.Score(x, y), m.Score(y, x)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("Score(%d,%d) = %v but Score(%d,%d) = %v", x, y, a, y, x, b)
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
			t.Errorf("Score(%d,%d) = %v not a finite non-negative value", x, y, a)
		}
	}
	if m.Score(-1, 0) != 0 || m.Score(0, 99) != 0 {
		t.Error("out-of-range scores should be 0")
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	g := twoCliques(t)
	v := g.Static()
	a, err := Train(v, Options{Rank: 3, Iterations: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(v, Options{Rank: 3, Iterations: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score(0, 5) != b.Score(0, 5) {
		t.Error("same seed should give identical models")
	}
}

func TestStateRoundTrip(t *testing.T) {
	g := twoCliques(t)
	m, err := Train(g.Static(), Options{Rank: 3, Iterations: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := m.State()
	m2, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]graph.NodeID{{0, 1}, {0, 6}, {3, 4}} {
		if a, b := m.Score(p[0], p[1]), m2.Score(p[0], p[1]); a != b {
			t.Errorf("round trip score(%v) = %v vs %v", p, b, a)
		}
	}
	st.U[0] = 999
	if m2.Score(0, 1) != m.Score(0, 1) {
		t.Error("mutating snapshot changed rebuilt model")
	}
}

func TestFromStateValidation(t *testing.T) {
	if _, err := FromState(State{}); err == nil {
		t.Error("empty state should fail")
	}
	if _, err := FromState(State{Nodes: 2, Rank: 2, U: make([]float64, 3), V: make([]float64, 4)}); err == nil {
		t.Error("mismatched factor sizes should fail")
	}
}

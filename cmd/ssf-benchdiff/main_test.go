package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ssflp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSSFExtract-8       	    7207	    152702 ns/op	     542 B/op	       2 allocs/op
BenchmarkWLFExtract-8       	   13225	     93809 ns/op	     409 B/op	       1 allocs/op
BenchmarkPaletteWL          	   13498	     90286 ns/op	       1 B/op	       0 allocs/op
BenchmarkNoMem-8            	    1000	      1234 ns/op
PASS
ok  	ssflp	7.320s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	ssf, ok := got["BenchmarkSSFExtract"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if ssf.NsPerOp != 152702 || ssf.BytesPerOp != 542 || ssf.AllocsPerOp != 2 {
		t.Errorf("SSFExtract = %+v", ssf)
	}
	if pwl := got["BenchmarkPaletteWL"]; pwl.NsPerOp != 90286 || pwl.AllocsPerOp != 0 {
		t.Errorf("PaletteWL = %+v", pwl)
	}
	if nm := got["BenchmarkNoMem"]; nm.NsPerOp != 1234 || nm.BytesPerOp != 0 {
		t.Errorf("plain -bench line without -benchmem columns: %+v", nm)
	}
}

func TestRecordKeepsBaselineUntilRebase(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_ssf.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	// First record: baseline == current.
	if err := run([]string{"record", "-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	rec, err := readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Baseline["BenchmarkSSFExtract"].NsPerOp != 152702 {
		t.Fatalf("first record did not seed baseline: %+v", rec.Baseline)
	}
	// Second record with different numbers: baseline preserved.
	faster := strings.ReplaceAll(sampleBench, "152702 ns/op", "76000 ns/op")
	if err := os.WriteFile(in, []byte(faster), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"record", "-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	rec, err = readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Baseline["BenchmarkSSFExtract"].NsPerOp != 152702 {
		t.Error("baseline must survive a plain record")
	}
	if rec.Current["BenchmarkSSFExtract"].NsPerOp != 76000 {
		t.Error("current must track the latest record")
	}
	// -rebase moves the baseline.
	if err := run([]string{"record", "-in", in, "-out", out, "-rebase"}); err != nil {
		t.Fatal(err)
	}
	rec, err = readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Baseline["BenchmarkSSFExtract"].NsPerOp != 76000 {
		t.Error("-rebase must reset the baseline")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkGone": {NsPerOp: 5},
	}
	head := map[string]Result{
		"BenchmarkA":   {NsPerOp: 110, AllocsPerOp: 2}, // +10%: fine at 25%
		"BenchmarkB":   {NsPerOp: 100, AllocsPerOp: 3}, // 0 -> 3 allocs: regression
		"BenchmarkNew": {NsPerOp: 7},
	}
	report, regressed := Diff(base, head, 25)
	if !regressed {
		t.Error("alloc growth from zero must regress")
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Errorf("report missing marker:\n%s", report)
	}
	if !strings.Contains(report, "(new)") || !strings.Contains(report, "missing from head") {
		t.Errorf("report must list one-sided benchmarks:\n%s", report)
	}
	// Within threshold: clean.
	if _, regressed := Diff(base, map[string]Result{"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 2}}, 25); regressed {
		t.Error("+10%% ns/op must pass a 25%% threshold")
	}
	// diff subcommand end-to-end via a single file.
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.json")
	if err := writeFile(path, &File{Schema: schemaID, Baseline: base, Current: head}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"diff", "-file", path, "-max-regress", "25"}); err == nil {
		t.Error("diff must exit nonzero on regression")
	}
	if err := run([]string{"diff", "-file", path, "-max-regress", "300"}); err != nil {
		t.Errorf("lenient threshold must pass: %v", err)
	}
}

package graph

import (
	"iter"
	"sort"
)

// StaticView is the static projection of a dynamic graph: timestamps are
// dropped and parallel edges between a pair are collapsed into one
// neighbor entry annotated with its multiplicity. This is the structure the
// classical heuristics (CN, AA, RA, ...) and the "-W" feature variants
// operate on, and it is also what the paper constructs when it "ignores all
// the timestamps and multiple history links" for static baselines.
type StaticView struct {
	nbrs  [][]NodeID // sorted distinct neighbors per node
	mult  [][]int32  // parallel multiplicities, aligned with nbrs
	pairs int        // number of distinct undirected adjacent pairs
}

// Static builds the static view of the graph. O(|E| log |E|).
func (g *Graph) Static() *StaticView {
	v := &StaticView{
		nbrs: make([][]NodeID, len(g.adj)),
		mult: make([][]int32, len(g.adj)),
	}
	for u, arcs := range g.adj {
		if len(arcs) == 0 {
			continue
		}
		ids := make([]NodeID, len(arcs))
		for i, a := range arcs {
			ids[i] = a.To
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		nb := make([]NodeID, 0, len(ids))
		mu := make([]int32, 0, len(ids))
		for _, id := range ids {
			if n := len(nb); n > 0 && nb[n-1] == id {
				mu[n-1]++
				continue
			}
			nb = append(nb, id)
			mu = append(mu, 1)
		}
		v.nbrs[u] = nb
		v.mult[u] = mu
		v.pairs += len(nb)
	}
	v.pairs /= 2
	return v
}

// NumNodes returns the number of nodes in the view.
func (v *StaticView) NumNodes() int { return len(v.nbrs) }

// NumPairs returns the number of distinct adjacent unordered node pairs.
func (v *StaticView) NumPairs() int { return v.pairs }

// Degree returns the number of distinct neighbors of u (|Γ_u| in the paper).
func (v *StaticView) Degree(u NodeID) int {
	if u < 0 || int(u) >= len(v.nbrs) {
		return 0
	}
	return len(v.nbrs[u])
}

// Strength returns S_u = Σ_{z∈Γ_u} W_uz where the weight of a pair is the
// number of parallel links between them (the rWRA weighting from §VI-C-2).
func (v *StaticView) Strength(u NodeID) float64 {
	if u < 0 || int(u) >= len(v.mult) {
		return 0
	}
	var s int64
	for _, m := range v.mult[u] {
		s += int64(m)
	}
	return float64(s)
}

// Neighbors returns the sorted distinct neighbor slice of u. The returned
// slice is owned by the view and must not be mutated.
func (v *StaticView) Neighbors(u NodeID) []NodeID {
	if u < 0 || int(u) >= len(v.nbrs) {
		return nil
	}
	return v.nbrs[u]
}

// Multiplicity returns the number of parallel links between u and w
// (0 when they are not adjacent).
func (v *StaticView) Multiplicity(u, w NodeID) int {
	if u < 0 || int(u) >= len(v.nbrs) {
		return 0
	}
	nb := v.nbrs[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	if i < len(nb) && nb[i] == w {
		return int(v.mult[u][i])
	}
	return 0
}

// HasEdge reports whether u and w are adjacent in the static view.
func (v *StaticView) HasEdge(u, w NodeID) bool { return v.Multiplicity(u, w) > 0 }

// CommonNeighbors iterates over Γ_u ∩ Γ_w in ascending order.
func (v *StaticView) CommonNeighbors(u, w NodeID) iter.Seq[NodeID] {
	return func(yield func(NodeID) bool) {
		if u < 0 || w < 0 || int(u) >= len(v.nbrs) || int(w) >= len(v.nbrs) {
			return
		}
		a, b := v.nbrs[u], v.nbrs[w]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				if !yield(a[i]) {
					return
				}
				i++
				j++
			}
		}
	}
}

// UnionSize returns |Γ_u ∪ Γ_w| (used by the Jaccard index).
func (v *StaticView) UnionSize(u, w NodeID) int {
	common := 0
	for range v.CommonNeighbors(u, w) {
		common++
	}
	return v.Degree(u) + v.Degree(w) - common
}

package heuristics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssflp/internal/graph"
)

// figure1Graph builds the celebrity example of the paper's Figure 1(a):
// celebrities A(0), B(1), C(2) densely interconnected via fans, and common
// users X(3), Y(4) who are just two of C's many fans.
//
//	A-C, B-C direct links; A and B each have 3 private fans; C has fans
//	including X and Y.
func figure1Graph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	add := func(u, v int) {
		t.Helper()
		if err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 2) // A-C
	add(1, 2) // B-C
	// A's fans: 5, 6, 7. B's fans: 8, 9, 10.
	for _, f := range []int{5, 6, 7} {
		add(0, f)
	}
	for _, f := range []int{8, 9, 10} {
		add(1, f)
	}
	// C's fans: X(3), Y(4), 11, 12.
	for _, f := range []int{3, 4, 11, 12} {
		add(2, f)
	}
	return g
}

func TestCommonNeighborsCannotSeparateFigure1(t *testing.T) {
	// The paper's motivating observation: CN, AA, RA, rWRA give A-B and X-Y
	// identical scores (single common neighbor C).
	g := figure1Graph(t)
	v := g.Static()
	for _, s := range []Scorer{CommonNeighbors(v), AdamicAdar(v), ResourceAllocation(v), RWRA(v)} {
		ab := s.Score(0, 1)
		xy := s.Score(3, 4)
		if ab != xy {
			t.Errorf("%s separates A-B (%v) from X-Y (%v); Figure 1 says it cannot", s.Name(), ab, xy)
		}
	}
}

func TestPASeparatesFigure1(t *testing.T) {
	g := figure1Graph(t)
	v := g.Static()
	pa := PreferentialAttachment(v)
	if ab, xy := pa.Score(0, 1), pa.Score(3, 4); ab <= xy {
		t.Errorf("PA(A-B) = %v should exceed PA(X-Y) = %v", ab, xy)
	}
}

func TestScorersKnownValues(t *testing.T) {
	// Square with diagonal: 0-1, 1-2, 2-3, 3-0, 0-2.
	g := graph.New(0)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), 1); err != nil {
			t.Fatal(err)
		}
	}
	v := g.Static()
	// Γ_1 = {0, 2}; Γ_3 = {0, 2}; common = {0, 2}.
	if got := CommonNeighbors(v).Score(1, 3); got != 2 {
		t.Errorf("CN(1,3) = %v, want 2", got)
	}
	if got := Jaccard(v).Score(1, 3); got != 1 {
		t.Errorf("Jac(1,3) = %v, want 1 (identical neighborhoods)", got)
	}
	if got := PreferentialAttachment(v).Score(1, 3); got != 4 {
		t.Errorf("PA(1,3) = %v, want 4", got)
	}
	wantAA := 1/math.Log(3) + 1/math.Log(3) // deg(0)=3, deg(2)=3
	if got := AdamicAdar(v).Score(1, 3); math.Abs(got-wantAA) > 1e-12 {
		t.Errorf("AA(1,3) = %v, want %v", got, wantAA)
	}
	wantRA := 1.0/3 + 1.0/3
	if got := ResourceAllocation(v).Score(1, 3); math.Abs(got-wantRA) > 1e-12 {
		t.Errorf("RA(1,3) = %v, want %v", got, wantRA)
	}
}

func TestJaccardDisconnectedPair(t *testing.T) {
	g := graph.New(0)
	g.EnsureNodes(2)
	v := g.Static()
	if got := Jaccard(v).Score(0, 1); got != 0 {
		t.Errorf("Jaccard of isolated pair = %v, want 0", got)
	}
}

func TestRWRAWeightsMultiEdges(t *testing.T) {
	// z=2 is the common neighbor. Doubling the 0-2 multiplicity raises rWRA.
	base := graph.New(0)
	for _, e := range [][3]int{{0, 2, 1}, {1, 2, 1}} {
		if err := base.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), graph.Timestamp(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	heavy := base.Clone()
	if err := heavy.AddEdge(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	sb := RWRA(base.Static()).Score(0, 1)
	sh := RWRA(heavy.Static()).Score(0, 1)
	if sh <= sb {
		t.Errorf("rWRA with heavier weight = %v, want > %v", sh, sb)
	}
}

func TestKatzValidationAndKnownValue(t *testing.T) {
	g := graph.New(0)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	v := g.Static()
	if _, err := Katz(v, KatzOptions{Beta: 0}); err == nil {
		t.Error("Katz beta=0 should fail")
	}
	if _, err := Katz(v, KatzOptions{Beta: 0.1, MaxLen: -1}); err == nil {
		t.Error("Katz negative MaxLen should fail")
	}
	s, err := Katz(v, KatzOptions{Beta: 0.5, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Paths 0->1 of length 1 (one) and length 3 (one: 0-1-0-1).
	want := 0.5 + 0.125
	if got := s.Score(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Katz(0,1) = %v, want %v", got, want)
	}
	if got := s.Score(0, 99); got != 0 {
		t.Errorf("Katz out-of-range = %v, want 0", got)
	}
}

func TestKatzPrefersCloserPairs(t *testing.T) {
	// Path 0-1-2-3: Katz(0,1) > Katz(0,2) > Katz(0,3).
	g := graph.New(0)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Katz(g.Static(), KatzOptions{Beta: 0.05, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := s.Score(0, 1), s.Score(0, 2), s.Score(0, 3)
	if !(a > b && b > c) {
		t.Errorf("Katz ordering violated: %v, %v, %v", a, b, c)
	}
}

func TestLocalRandomWalkBasics(t *testing.T) {
	g := figure1Graph(t)
	v := g.Static()
	if _, err := LocalRandomWalk(v, RandomWalkOptions{Steps: -2}); err == nil {
		t.Error("negative steps should fail")
	}
	s, err := LocalRandomWalk(v, RandomWalkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score(0, 99); got != 0 {
		t.Errorf("RW out-of-range = %v, want 0", got)
	}
	// Symmetric by construction.
	if a, b := s.Score(0, 1), s.Score(1, 0); math.Abs(a-b) > 1e-12 {
		t.Errorf("RW not symmetric: %v vs %v", a, b)
	}
	// A pair with a shared neighbor must outscore a pair beyond the walk
	// horizon (5 and 8 are four hops apart, unreachable in 3 steps).
	if near, far := s.Score(0, 3), s.Score(5, 8); !(near > 0 && far == 0) {
		t.Errorf("RW(near) = %v, RW(far) = %v; want positive and zero", near, far)
	}
}

func TestLocalRandomWalkEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.EnsureNodes(3)
	s, err := LocalRandomWalk(g.Static(), RandomWalkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score(0, 1); got != 0 {
		t.Errorf("RW on empty graph = %v, want 0", got)
	}
}

func TestScorerNames(t *testing.T) {
	g := figure1Graph(t)
	v := g.Static()
	katz, err := Katz(v, KatzOptions{Beta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := LocalRandomWalk(v, RandomWalkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Scorer]string{
		CommonNeighbors(v):        "CN",
		Jaccard(v):                "Jac.",
		PreferentialAttachment(v): "PA",
		AdamicAdar(v):             "AA",
		ResourceAllocation(v):     "RA",
		RWRA(v):                   "rWRA",
		katz:                      "Katz",
		rw:                        "RW",
	}
	for s, name := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestPropertyScoresSymmetricAndFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(15)
		g.EnsureNodes(15)
		for i := 0; i < 40; i++ {
			u, v := graph.NodeID(rng.Intn(15)), graph.NodeID(rng.Intn(15))
			if u != v {
				_ = g.AddEdge(u, v, graph.Timestamp(rng.Intn(10)))
			}
		}
		view := g.Static()
		katz, err := Katz(view, KatzOptions{Beta: 0.01})
		if err != nil {
			return false
		}
		rw, err := LocalRandomWalk(view, RandomWalkOptions{})
		if err != nil {
			return false
		}
		scorers := []Scorer{
			CommonNeighbors(view), Jaccard(view), PreferentialAttachment(view),
			AdamicAdar(view), ResourceAllocation(view), RWRA(view), katz, rw,
		}
		u := graph.NodeID(rng.Intn(15))
		v := graph.NodeID(rng.Intn(15))
		for _, s := range scorers {
			a, b := s.Score(u, v), s.Score(v, u)
			if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
				return false
			}
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

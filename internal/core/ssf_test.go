package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssflp/internal/graph"
	"ssflp/internal/subgraph"
)

func buildGraph(t *testing.T, edges [][3]int) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	for _, e := range edges {
		if err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), graph.Timestamp(e[2])); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func fig3Graph(t *testing.T) *graph.Graph {
	t.Helper()
	return buildGraph(t, [][3]int{
		{0, 5, 1}, {0, 6, 1}, {0, 7, 1},
		{0, 2, 2}, {0, 3, 2},
		{1, 2, 3}, {1, 3, 3},
		{1, 4, 4},
	})
}

func TestFeatureLen(t *testing.T) {
	cases := map[int]int{3: 2, 5: 9, 10: 44, 20: 189}
	for k, want := range cases {
		if got := FeatureLen(k); got != want {
			t.Errorf("FeatureLen(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestInfluence(t *testing.T) {
	stamps := []graph.Timestamp{10, 8, 10}
	got := Influence(stamps, 10, 0.5)
	want := 1 + math.Exp(-1) + 1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Influence = %v, want %v", got, want)
	}
	if Influence(nil, 10, 0.5) != 0 {
		t.Error("Influence of empty stamp set should be 0")
	}
}

func TestNewExtractorValidation(t *testing.T) {
	g := fig3Graph(t)
	if _, err := NewExtractor(nil, 5, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph error = %v", err)
	}
	if _, err := NewExtractor(g, 5, Options{K: 2}); !errors.Is(err, subgraph.ErrBadK) {
		t.Errorf("K=2 error = %v", err)
	}
	if _, err := NewExtractor(g, 5, Options{Theta: 1.5}); !errors.Is(err, ErrBadTheta) {
		t.Errorf("theta=1.5 error = %v", err)
	}
	if _, err := NewExtractor(g, 5, Options{Theta: -0.5}); !errors.Is(err, ErrBadTheta) {
		t.Errorf("theta=-0.5 error = %v", err)
	}
	if _, err := NewExtractor(g, 5, Options{Mode: EntryMode(99)}); !errors.Is(err, ErrBadMode) {
		t.Errorf("bad mode error = %v", err)
	}
}

func TestExtractorDefaults(t *testing.T) {
	g := fig3Graph(t)
	e, err := NewExtractor(g, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := e.Options()
	if o.K != DefaultK || o.Theta != DefaultTheta || o.Mode != EntryInverseDistance {
		t.Errorf("defaults = %+v", o)
	}
}

func TestExtractLengthAndDeterminism(t *testing.T) {
	g := fig3Graph(t)
	for _, mode := range []EntryMode{EntryInfluence, EntryInverseDistance, EntryCount} {
		e, err := NewExtractor(g, 5, Options{K: 5, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		v1, err := e.Extract(0, 1)
		if err != nil {
			t.Fatalf("%v Extract: %v", mode, err)
		}
		if len(v1) != FeatureLen(5) {
			t.Errorf("%v feature length = %d, want %d", mode, len(v1), FeatureLen(5))
		}
		v2, err := e.Extract(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Errorf("%v extraction not deterministic at %d: %v vs %v", mode, i, v1[i], v2[i])
			}
		}
	}
}

func TestMatrixSymmetricZeroDiagonalAndTargetCell(t *testing.T) {
	g := fig3Graph(t)
	for _, mode := range []EntryMode{EntryInfluence, EntryInverseDistance, EntryCount} {
		e, err := NewExtractor(g, 5, Options{K: 5, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		adj, ks, err := e.Matrix(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ks.N != 5 {
			t.Fatalf("%v: K-structure N = %d, want 5", mode, ks.N)
		}
		if adj[0][1] != 0 || adj[1][0] != 0 {
			t.Errorf("%v: target cell A(1,2) = %v, want 0", mode, adj[0][1])
		}
		for i := range adj {
			if adj[i][i] != 0 {
				t.Errorf("%v: diagonal A(%d,%d) = %v, want 0", mode, i, i, adj[i][i])
			}
			for j := range adj[i] {
				if adj[i][j] != adj[j][i] {
					t.Errorf("%v: asymmetric at (%d,%d)", mode, i, j)
				}
				if adj[i][j] < 0 {
					t.Errorf("%v: negative entry at (%d,%d): %v", mode, i, j, adj[i][j])
				}
			}
		}
	}
}

func TestCountModeMatchesLinkCounts(t *testing.T) {
	g := fig3Graph(t)
	e, err := NewExtractor(g, 5, Options{K: 5, Mode: EntryCount})
	if err != nil {
		t.Fatal(err)
	}
	adj, ks, err := e.Matrix(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ks.Links {
		if l.X == 0 && l.Y == 1 {
			continue // target cell forced to zero
		}
		if got := adj[l.X][l.Y]; got != float64(l.Count()) {
			t.Errorf("A(%d,%d) = %v, want count %d", l.X, l.Y, got, l.Count())
		}
	}
}

func TestInfluenceModeDecaysWithTime(t *testing.T) {
	// Same topology, different link ages: the older graph must produce
	// entries no larger than the fresh one.
	fresh := buildGraph(t, [][3]int{{0, 2, 10}, {1, 2, 10}, {2, 3, 10}})
	stale := buildGraph(t, [][3]int{{0, 2, 1}, {1, 2, 1}, {2, 3, 1}})
	ef, err := NewExtractor(fresh, 11, Options{K: 4, Mode: EntryInfluence})
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewExtractor(stale, 11, Options{K: 4, Mode: EntryInfluence})
	if err != nil {
		t.Fatal(err)
	}
	vf, err := ef.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := es.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	anyLess := false
	for i := range vf {
		if vs[i] > vf[i]+1e-12 {
			t.Errorf("stale entry %d = %v exceeds fresh %v", i, vs[i], vf[i])
		}
		if vs[i] < vf[i] {
			anyLess = true
		}
	}
	if !anyLess {
		t.Error("decay had no effect on any entry")
	}
}

func TestSSFWInsensitiveToTimestamps(t *testing.T) {
	// EntryCount must give identical features regardless of timestamps.
	a := buildGraph(t, [][3]int{{0, 2, 1}, {1, 2, 5}, {2, 3, 9}})
	b := buildGraph(t, [][3]int{{0, 2, 7}, {1, 2, 2}, {2, 3, 4}})
	ea, err := NewExtractor(a, 10, Options{K: 4, Mode: EntryCount})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewExtractor(b, 10, Options{K: 4, Mode: EntryCount})
	if err != nil {
		t.Fatal(err)
	}
	va, err := ea.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := eb.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Errorf("SSF-W differs at %d: %v vs %v", i, va[i], vb[i])
		}
	}
}

func TestInverseDistanceEntriesBounded(t *testing.T) {
	g := fig3Graph(t)
	e, err := NewExtractor(g, 5, Options{K: 5, Mode: EntryInverseDistance})
	if err != nil {
		t.Fatal(err)
	}
	adj, _, err := e.Matrix(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] < 0 || adj[i][j] > 1 {
				t.Errorf("inverse-distance entry (%d,%d) = %v outside [0,1]", i, j, adj[i][j])
			}
		}
	}
}

func TestExtractSparseComponentPads(t *testing.T) {
	g := buildGraph(t, [][3]int{{0, 1, 1}, {1, 2, 2}})
	e, err := NewExtractor(g, 3, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != FeatureLen(10) {
		t.Fatalf("padded feature length = %d, want %d", len(v), FeatureLen(10))
	}
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("feature of a connected pair should have some nonzero entries")
	}
}

func TestUnfoldSkipsTargetCell(t *testing.T) {
	k := 4
	adj := make([][]float64, k)
	for i := range adj {
		adj[i] = make([]float64, k)
	}
	// Mark every upper cell with a distinct value.
	val := 1.0
	for j := 1; j < k; j++ {
		for i := 0; i < j; i++ {
			adj[i][j] = val
			val++
		}
	}
	got := Unfold(adj, k)
	// Columns 3..4 (1-based): cells (1,3),(2,3),(1,4),(2,4),(3,4) = values 2,3,4,5,6.
	want := []float64{2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Unfold length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Unfold[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnfoldPadsShortMatrix(t *testing.T) {
	got := Unfold([][]float64{{0, 1}, {1, 0}}, 5)
	if len(got) != FeatureLen(5) {
		t.Fatalf("len = %d, want %d", len(got), FeatureLen(5))
	}
	for i, v := range got {
		if v != 0 {
			t.Errorf("padded entry %d = %v, want 0", i, v)
		}
	}
}

func TestPropertyExtractWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(20)
		g.EnsureNodes(20)
		for i := 0; i < 50; i++ {
			u, v := graph.NodeID(rng.Intn(20)), graph.NodeID(rng.Intn(20))
			if u != v {
				_ = g.AddEdge(u, v, graph.Timestamp(rng.Intn(30)))
			}
		}
		for _, mode := range []EntryMode{EntryInfluence, EntryInverseDistance, EntryCount} {
			e, err := NewExtractor(g, 30, Options{K: 8, Mode: mode})
			if err != nil {
				return false
			}
			v, err := e.Extract(0, 1)
			if err != nil {
				return false
			}
			if len(v) != FeatureLen(8) {
				return false
			}
			for _, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEntryModeString(t *testing.T) {
	cases := map[EntryMode]string{
		EntryInfluence:       "influence",
		EntryInverseDistance: "inverse-distance",
		EntryCount:           "count",
		EntryMode(42):        "EntryMode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

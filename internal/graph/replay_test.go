package graph

import (
	"testing"
	"testing/quick"
)

func TestReplayOrdersByTimestamp(t *testing.T) {
	g := New(0)
	mustAdd(t, g, 0, 1, 5)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 2, 3, 5)
	mustAdd(t, g, 0, 3, 9)
	var stamps []Timestamp
	total := 0
	for ts, batch := range g.Replay() {
		stamps = append(stamps, ts)
		total += len(batch)
		for _, e := range batch {
			if e.Ts != ts {
				t.Errorf("edge %v in batch for ts %d", e, ts)
			}
		}
	}
	if total != 4 {
		t.Errorf("replayed %d edges, want 4", total)
	}
	want := []Timestamp{2, 5, 9}
	if len(stamps) != len(want) {
		t.Fatalf("stamps = %v", stamps)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Errorf("stamp %d = %d, want %d", i, stamps[i], want[i])
		}
	}
}

func TestReplayEarlyStop(t *testing.T) {
	g := New(0)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	count := 0
	for range g.Replay() {
		count++
		break
	}
	if count != 1 {
		t.Errorf("early break yielded %d batches", count)
	}
}

func TestPrefixesAccumulate(t *testing.T) {
	g := New(0)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 2, 3, 2)
	mustAdd(t, g, 3, 4, 7)
	var sizes []int
	for _, prefix := range g.Prefixes() {
		sizes = append(sizes, prefix.NumEdges())
		if prefix.NumNodes() != g.NumNodes() {
			t.Error("prefix node set must match the full graph")
		}
	}
	want := []int{1, 3, 4}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("prefix %d edges = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestPropertyPrefixesMatchPeriod(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 40)
		if g.NumEdges() == 0 {
			return true
		}
		for ts, prefix := range g.Prefixes() {
			want := g.Period(g.MinTimestamp(), ts+1)
			if prefix.NumEdges() != want.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

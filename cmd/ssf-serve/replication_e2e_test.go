package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitUntil polls cond for up to 10s; the replication loop has jittered
// backoff so fixed sleeps would be flaky.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newLeaderServer boots a -role leader server on a fresh WAL directory and
// returns it with an httptest front.
func newLeaderServer(t *testing.T, file string) (*server, *httptest.Server) {
	t.Helper()
	cfg := walConfig(file, t.TempDir())
	cfg.Role = "leader"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		front.Close()
		srv.close()
	})
	return srv, front
}

// newReplicaServer boots a -role replica server following leaderURL and
// starts its pull loop.
func newReplicaServer(t *testing.T, file, leaderURL string, lagLSN uint64, lagAge time.Duration) *server {
	t.Helper()
	srv, err := newServer(serverConfig{
		File: file, Method: "CN", MaxPositives: 20, Seed: 1,
		Role: "replica", LeaderAddr: leaderURL,
		ReplLagLSN: lagLSN, ReplLagAge: lagAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.startReplication(ctx)
	t.Cleanup(func() {
		cancel()
		srv.close()
	})
	return srv
}

// TestReplicaFollowsLeaderEndToEnd is the whole tentpole in one loop: a
// leader ingests durable edges, a stateless replica bootstraps and tails the
// WAL, serves the same scores read-only, and reports its position on
// /healthz.
func TestReplicaFollowsLeaderEndToEnd(t *testing.T) {
	file := writeTestNet(t)
	leader, front := newLeaderServer(t, file)
	lh := leader.routes()
	replica := newReplicaServer(t, file, front.URL, 4096, time.Minute)
	rh := replica.routes()

	code, body := postJSON(t, lh, "/ingest", `[{"u":"r1","v":"r2","ts":9},{"u":"r2","v":"0"},{"u":"r1","v":"0"}]`)
	if code != http.StatusOK || body["durable"] != true {
		t.Fatalf("leader ingest = %d %v", code, body)
	}
	waitUntil(t, "replica catch-up", func() bool {
		return replica.follower.AppliedLSN() == 3 && replica.follower.Lag() == 0
	})

	// Same graph ⇒ identical scores (CN is deterministic in the snapshot).
	for _, pair := range [][2]string{{"r1", "r2"}, {"r2", "0"}, {"0", "1"}} {
		path := fmt.Sprintf("/score?u=%s&v=%s", pair[0], pair[1])
		lc, lb := getJSON(t, lh, path)
		rc, rb := getJSON(t, rh, path)
		if lc != http.StatusOK || rc != lc {
			t.Fatalf("score %s: leader %d, replica %d (%v)", path, lc, rc, rb)
		}
		if lb["score"] != rb["score"] || lb["predicted"] != rb["predicted"] {
			t.Errorf("score %s diverged: leader %v, replica %v", path, lb, rb)
		}
	}

	// Writes have one home: the replica refuses them.
	if code, body := postJSON(t, rh, "/ingest", `{"u":"x","v":"y"}`); code != http.StatusForbidden {
		t.Fatalf("replica ingest = %d %v, want 403", code, body)
	}

	// Both roles expose their log positions.
	if code, h := getJSON(t, lh, "/healthz"); code != http.StatusOK ||
		h["role"] != "leader" || h["durable_lsn"].(float64) != 3 || h["applied_lsn"].(float64) != 3 {
		t.Errorf("leader healthz = %d %v", code, h)
	}
	code, h := getJSON(t, rh, "/healthz")
	if code != http.StatusOK || h["role"] != "replica" ||
		h["applied_lsn"].(float64) != 3 || h["durable_lsn"].(float64) != 3 {
		t.Errorf("replica healthz = %d %v", code, h)
	}
	repl, ok := h["replication"].(map[string]any)
	if !ok || repl["lag_lsn"].(float64) != 0 {
		t.Errorf("replica healthz replication = %v", h["replication"])
	}
	if code, _ := getJSON(t, rh, "/readyz"); code != http.StatusOK {
		t.Errorf("caught-up replica readyz = %d, want 200", code)
	}
}

// TestReplicaReadyzFlipsOnLeaderSilence drives the readiness state machine
// without restarts: not ready before first contact, ready once tailing, not
// ready again when the leader goes silent past the age budget, and ready
// again as soon as contact resumes.
func TestReplicaReadyzFlipsOnLeaderSilence(t *testing.T) {
	file := writeTestNet(t)
	leader, _ := newLeaderServer(t, file)
	lh := leader.routes()

	var silent atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if silent.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		lh.ServeHTTP(w, r)
	}))
	// Registered before the replica's cleanup so it runs after it: the
	// follower's cancelled long-poll must release its connection first or
	// Close stalls on the active stream.
	t.Cleanup(proxy.Close)

	silent.Store(true)
	replica := newReplicaServer(t, file, proxy.URL, 4096, 300*time.Millisecond)
	rh := replica.routes()
	if code, body := getJSON(t, rh, "/readyz"); code != http.StatusServiceUnavailable ||
		body["status"] != "not ready" {
		t.Fatalf("pre-contact readyz = %d %v, want 503 not ready", code, body)
	}

	silent.Store(false)
	waitUntil(t, "readyz after first contact", func() bool {
		code, _ := getJSON(t, rh, "/readyz")
		return code == http.StatusOK
	})

	silent.Store(true)
	waitUntil(t, "readyz 503 on leader silence", func() bool {
		code, _ := getJSON(t, rh, "/readyz")
		return code == http.StatusServiceUnavailable
	})

	silent.Store(false)
	// The follower may be parked in a long-poll it opened before the outage;
	// an append wakes it immediately instead of waiting out the poll window.
	if code, body := postJSON(t, lh, "/ingest", `{"u":"wake1","v":"wake2"}`); code != http.StatusOK {
		t.Fatalf("wake ingest = %d %v", code, body)
	}
	waitUntil(t, "readyz recovery after contact resumes", func() bool {
		code, _ := getJSON(t, rh, "/readyz")
		return code == http.StatusOK
	})
}

// TestReplicaBootstrapsFromLeaderSnapshot covers the other bootstrap arm: a
// leader with a persisted snapshot hands the replica its image, so the
// replica starts at the snapshot LSN instead of replaying from 1.
func TestReplicaBootstrapsFromLeaderSnapshot(t *testing.T) {
	file := writeTestNet(t)
	leader, front := newLeaderServer(t, file)
	lh := leader.routes()
	if code, body := postJSON(t, lh, "/ingest", `[{"u":"s1","v":"s2"},{"u":"s2","v":"0"}]`); code != http.StatusOK {
		t.Fatalf("ingest = %d %v", code, body)
	}
	if err := leader.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	if code, body := postJSON(t, lh, "/ingest", `{"u":"s1","v":"0"}`); code != http.StatusOK {
		t.Fatalf("post-snapshot ingest = %d %v", code, body)
	}

	replica := newReplicaServer(t, file, front.URL, 4096, time.Minute)
	waitUntil(t, "replica catch-up", func() bool {
		return replica.follower.AppliedLSN() == 3
	})
	code, body := getJSON(t, replica.routes(), "/score?u=s1&v=s2")
	if code != http.StatusOK {
		t.Fatalf("replica score = %d %v (snapshot labels missing?)", code, body)
	}
}

func TestRunRoleFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown role", []string{"-role", "bogus"}},
		{"leader without wal", []string{"-role", "leader", "-file", "x"}},
		{"replica without leader-addr", []string{"-role", "replica", "-file", "x"}},
		{"replica with wal", []string{"-role", "replica", "-leader-addr", "http://l", "-wal-dir", "/tmp/w", "-file", "x"}},
		{"replica with shards", []string{"-role", "replica", "-leader-addr", "http://l", "-shards", "2", "-file", "x"}},
		{"leader-addr without replica role", []string{"-leader-addr", "http://l", "-file", "x"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Error("want a flag validation error")
			}
		})
	}
}

package ssflp

import (
	"testing"
)

func TestScoreBatchMatchesSequential(t *testing.T) {
	g := testNetwork(t)
	pred, err := Train(g, SSFLR, fastTrainOpts())
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]NodeID
	for u := NodeID(0); u < 20; u++ {
		pairs = append(pairs, [2]NodeID{u, u + 13})
	}
	batch, err := pred.ScoreBatch(pairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(pairs) {
		t.Fatalf("batch = %d results, want %d", len(batch), len(pairs))
	}
	for i, p := range pairs {
		want, err := pred.Score(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Score != want {
			t.Errorf("pair %v: batch %v vs sequential %v", p, batch[i].Score, want)
		}
		if batch[i].U != p[0] || batch[i].V != p[1] {
			t.Errorf("pair %d reordered: %+v", i, batch[i])
		}
	}
}

func TestScoreBatchDefaultWorkersAndErrors(t *testing.T) {
	g := testNetwork(t)
	pred, err := Train(g, SSFLR, fastTrainOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.ScoreBatch([][2]NodeID{{0, 1}}, 0); err != nil {
		t.Errorf("default workers: %v", err)
	}
	if _, err := pred.ScoreBatch([][2]NodeID{{0, 0}}, 2); err == nil {
		t.Error("self pair should fail for feature methods")
	}
	empty, err := pred.ScoreBatch(nil, 2)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch = %v, %v", empty, err)
	}
}

package ssflp

import (
	"ssflp/internal/core"
	"ssflp/internal/telemetry"
)

// PredictorMetrics bundles the scoring-layer telemetry handles: batch
// throughput, per-pair score latency, worker saturation, and the extraction
// stage metrics threaded down into the SSF pipeline. Construct with
// NewPredictorMetrics and attach with Predictor.SetMetrics; a nil
// *PredictorMetrics disables all of it.
type PredictorMetrics struct {
	batches     *telemetry.Counter
	pairs       *telemetry.Counter
	errors      *telemetry.Counter
	batchSize   *telemetry.Histogram
	pairSeconds *telemetry.Histogram
	workersBusy *telemetry.Gauge
	core        *core.Metrics
}

// NewPredictorMetrics registers the predictor metric families on reg,
// including the ssf_extract_* families consumed by the core extractor.
func NewPredictorMetrics(reg *telemetry.Registry) *PredictorMetrics {
	return &PredictorMetrics{
		batches: reg.Counter("ssf_score_batches_total",
			"Score batches processed (single /score requests count as a batch of one)."),
		pairs: reg.Counter("ssf_score_pairs_total",
			"Candidate pairs scored across all batches."),
		errors: reg.Counter("ssf_score_errors_total",
			"Batches that returned an error (including cancellation and panics)."),
		batchSize: reg.Histogram("ssf_score_batch_size",
			"Pairs per score batch.", telemetry.SizeBuckets),
		pairSeconds: reg.Histogram("ssf_score_pair_duration_seconds",
			"Wall-clock time to score one pair, extraction included.", nil),
		workersBusy: reg.Gauge("ssf_score_workers_busy",
			"Batch-pool workers currently scoring a pair."),
		core: core.NewMetrics(reg),
	}
}

// Nil-safe accessors: a nil *PredictorMetrics hands out nil handles, whose
// mutating methods no-op, so the batch path needs no conditionals.

func (m *PredictorMetrics) batchesCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.batches
}

func (m *PredictorMetrics) pairsCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.pairs
}

func (m *PredictorMetrics) errorsCounter() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.errors
}

func (m *PredictorMetrics) batchSizeHist() *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.batchSize
}

func (m *PredictorMetrics) pairSecondsHist() *telemetry.Histogram {
	if m == nil {
		return nil
	}
	return m.pairSeconds
}

func (m *PredictorMetrics) workersBusyGauge() *telemetry.Gauge {
	if m == nil {
		return nil
	}
	return m.workersBusy
}

// SetMetrics attaches telemetry to the predictor and, when the method is
// SSF-based, threads the extraction stage metrics into the underlying
// extractor. Call during wiring, before concurrent scoring starts. A nil m
// detaches scoring metrics but leaves extractor metrics in place.
func (p *Predictor) SetMetrics(m *PredictorMetrics) {
	p.metrics = m
	if m != nil && p.ssfExtractor != nil {
		p.ssfExtractor.SetMetrics(m.core)
	}
}

// CacheStats is a snapshot of the extraction cache's counters.
type CacheStats struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	SharedInflight int64 `json:"shared_inflight"`
	Size           int   `json:"size"`
	Capacity       int   `json:"capacity"`
}

// DefaultCacheSize is the extraction cache capacity selected by
// EnableCache(0). Re-exported from internal/core.
const DefaultCacheSize = core.DefaultCacheSize

// EnableCache interposes an LRU + singleflight cache between the score
// closures and SSF feature extraction. capacity <= 0 selects
// DefaultCacheSize. It reports whether caching applies: only SSF-based
// feature methods have a cacheable extractor (WLF, heuristic and NMF
// predictors return false). Call during wiring, before concurrent scoring;
// after any graph mutation call PurgeCache.
func (p *Predictor) EnableCache(capacity int) bool {
	if p.ssfExtractor == nil {
		return false
	}
	p.cache = core.NewCachingExtractor(p.ssfExtractor, capacity)
	p.extract = p.cache.Extract
	return true
}

// PurgeCache empties the extraction cache (no-op when caching is off), for
// owners that mutate the predictor's graph in place. Epoch-based servers
// never call it: Bind keys cache entries by epoch instead, so superseded
// vectors simply age out of the LRU.
func (p *Predictor) PurgeCache() {
	if p.cache != nil {
		p.cache.Purge()
	}
}

// CacheStats snapshots the extraction cache counters; ok is false when
// EnableCache was never (successfully) called.
func (p *Predictor) CacheStats() (stats CacheStats, ok bool) {
	if p.cache == nil {
		return CacheStats{}, false
	}
	hits, misses, size := p.cache.Stats()
	return CacheStats{
		Hits:           hits,
		Misses:         misses,
		SharedInflight: p.cache.SharedInflight(),
		Size:           size,
		Capacity:       p.cache.Capacity(),
	}, true
}

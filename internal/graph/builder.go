package graph

import "fmt"

// Builder incrementally assembles a labeled dynamic graph from a stream of
// (srcLabel, dstLabel, timestamp) events, interning label tokens to dense
// NodeIDs in first-seen order. It is the shared substrate of the edge-list
// parser, WAL recovery and live ingestion: because interning order is purely
// a function of the event stream, a graph recovered from a snapshot plus an
// event tail assigns exactly the same ids as one built from the full stream.
// Builder is not safe for concurrent use; callers serialize access.
type Builder struct {
	g      *Graph
	labels []string
	index  map[string]NodeID

	// snapIndex is the label index shared with issued snapshots; it covers
	// the first snapLabels labels and is never mutated once handed out —
	// Snapshot rebuilds it when the label set has grown since.
	snapIndex  map[string]NodeID
	snapLabels int
}

// NewBuilder returns a Builder over a fresh empty graph.
func NewBuilder() *Builder {
	return &Builder{g: New(0), index: make(map[string]NodeID)}
}

// ResumeBuilder wraps an existing graph and its label dictionary (e.g. a
// recovered snapshot) so new events continue interning where the original
// stream left off. The graph must have exactly one node per label, in label
// order, and labels must be distinct.
func ResumeBuilder(g *Graph, labels []string) (*Builder, error) {
	if g == nil {
		g = New(len(labels))
	}
	if g.NumNodes() != len(labels) {
		return nil, fmt.Errorf("graph: resume builder: %d nodes but %d labels", g.NumNodes(), len(labels))
	}
	index := make(map[string]NodeID, len(labels))
	for i, l := range labels {
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("graph: resume builder: duplicate label %q", l)
		}
		index[l] = NodeID(i)
	}
	return &Builder{g: g, labels: append([]string(nil), labels...), index: index}, nil
}

// Intern returns the node id for label, adding a fresh isolated node when the
// label has not been seen before.
func (b *Builder) Intern(label string) NodeID {
	if id, ok := b.index[label]; ok {
		return id
	}
	id := b.g.AddNode()
	b.index[label] = id
	b.labels = append(b.labels, label)
	return id
}

// AddEdge interns both endpoint labels and inserts the timestamped link.
// Both labels are interned even when the edge itself is rejected as a self
// loop, mirroring how the edge-list parser treats tokens.
func (b *Builder) AddEdge(uLabel, vLabel string, ts Timestamp) error {
	u := b.Intern(uLabel)
	v := b.Intern(vLabel)
	return b.g.AddEdge(u, v, ts)
}

// Graph returns the graph under construction. The builder keeps mutating the
// same object on later AddEdge calls.
func (b *Builder) Graph() *Graph { return b.g }

// Labels returns the id -> label dictionary. The slice is shared with the
// builder; treat it as read-only.
func (b *Builder) Labels() []string { return b.labels }

// Lookup resolves a label to its node id in O(1).
func (b *Builder) Lookup(label string) (NodeID, bool) {
	id, ok := b.index[label]
	return id, ok
}

// Snapshot freezes the builder's current state into an immutable epoch that
// later Intern/AddEdge calls cannot disturb. The cost is O(V) for the frozen
// adjacency headers plus, only when labels were added since the previous
// snapshot, O(V) to rebuild the shared label index — consecutive snapshots
// over a stable node set share one index map. The builder itself remains
// single-writer: callers serialize Snapshot with AddEdge/Intern, but the
// returned Snapshot may be read concurrently with further builder writes.
func (b *Builder) Snapshot(epoch uint64) *Snapshot {
	if b.snapIndex == nil || len(b.labels) != b.snapLabels {
		idx := make(map[string]NodeID, len(b.labels))
		for i, l := range b.labels {
			idx[l] = NodeID(i)
		}
		b.snapIndex = idx
		b.snapLabels = len(b.labels)
	}
	g := b.g.Freeze()
	return &Snapshot{
		Epoch:  epoch,
		Graph:  g,
		Labels: b.labels[:len(b.labels):len(b.labels)],
		Stats:  g.Statistics(),
		index:  b.snapIndex,
	}
}

package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	g.Inc()
	g.Dec()
	h.Observe(0.1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil receivers must read as zero")
	}
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("Value = %g, want 7.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 5, 10, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// Upper bounds are inclusive: 0.05,0.1 -> le=0.1; 0.5,1 -> le=1;
	// 5,10 -> le=10; 50 -> +Inf.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got, want := h.Sum(), 66.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramTrailingInfStripped(t *testing.T) {
	h := newHistogram([]float64{1, 2, math.Inf(1)})
	if len(h.upper) != 2 {
		t.Fatalf("explicit +Inf should be stripped, got bounds %v", h.upper)
	}
	h.Observe(3)
	if h.counts[2].Load() != 1 {
		t.Fatal("overflow observation must land in the implicit +Inf bucket")
	}
}

func TestHistogramDuplicateBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate bucket bounds")
		}
	}()
	newHistogram([]float64{1, 1, 2})
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("bad-name", "")
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "", "endpoint", "code")
	a := v.With("/score", "200")
	b := v.With("/score", "200")
	if a != b {
		t.Fatal("same label values must return the same child")
	}
	c := v.With("/score", "500")
	if a == c {
		t.Fatal("distinct label values must return distinct children")
	}
	a.Inc()
	a.Inc()
	c.Inc()
	if a.Value() != 2 || c.Value() != 1 {
		t.Fatalf("children not independent: %d, %d", a.Value(), c.Value())
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "", "endpoint")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	v.With("a", "b")
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	v := r.CounterVec("v_total", "", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				v.With("a").Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if v.With("a").Value() != workers*per {
		t.Fatalf("vec counter = %d, want %d", v.With("a").Value(), workers*per)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("Lint after concurrent writes: %v", err)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-3, "-3"},
		{42000, "42000"},
		{0.25, "0.25"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{1e-5, "1e-05"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

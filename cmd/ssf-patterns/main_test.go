package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	var out strings.Builder
	for {
		n, _ := r.Read(buf)
		if n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	return out.String(), runErr
}

func TestRunPatterns(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "40", "-samples", "40", "-k", "6", "-top", "1",
			"-datasets", "Co-author"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Co-author", "pattern:", "T"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPatternsErrors(t *testing.T) {
	if err := run([]string{"-datasets", "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunPatternsDOT(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-scale", "40", "-samples", "30", "-k", "6", "-top", "1",
			"-datasets", "Slashdot", "-dot", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("missing dot confirmation:\n%s", out)
	}
	data, err := os.ReadFile(dir + "/slashdot.dot")
	if err != nil {
		t.Fatalf("dot file: %v", err)
	}
	if !strings.Contains(string(data), "graph \"Slashdot\"") {
		t.Errorf("dot content:\n%s", data)
	}
}

package ssflp

import (
	"fmt"
	"runtime"
	"sync"
)

// ScoredPair is one candidate link with its predicted score.
type ScoredPair struct {
	U, V  NodeID
	Score float64
}

// ScoreBatch scores many candidate pairs concurrently with a bounded worker
// pool (feature extraction dominates the cost for the SSF/WLF methods and
// parallelizes embarrassingly). Results preserve the input order; the first
// extraction error aborts the batch. workers <= 0 selects NumCPU.
func (p *Predictor) ScoreBatch(pairs [][2]NodeID, workers int) ([]ScoredPair, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]ScoredPair, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pair := range pairs {
		wg.Add(1)
		go func(i int, u, v NodeID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := p.score(u, v)
			out[i] = ScoredPair{U: u, V: v, Score: s}
			errs[i] = err
		}(i, pair[0], pair[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ssflp: score (%d, %d): %w", pairs[i][0], pairs[i][1], err)
		}
	}
	return out, nil
}

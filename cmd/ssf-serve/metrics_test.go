package main

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssflp"
	"ssflp/internal/telemetry"
)

// metricsTestServer trains an SSFLR predictor (so the extraction stage
// metrics and the cache are live) with durable ingest on, capturing the
// structured log into buf.
func metricsTestServer(t *testing.T, buf *bytes.Buffer) *server {
	t.Helper()
	g, err := ssflp.GenerateDataset("Slashdot", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssflp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(serverConfig{
		File: path, Method: "SSFLR", K: 6, MaxPositives: 20, Seed: 1,
		WALDir: filepath.Join(dir, "wal"),
		Logger: slog.New(slog.NewJSONHandler(buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() })
	return srv
}

func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	out := rec.Body.String()
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics failed lint: %v\n%s", err, out)
	}
	return out
}

// TestMetricsEndToEnd drives the server through scoring and ingest, then
// asserts that the exposition covers every layer: HTTP, scoring, extraction,
// WAL, and the Go runtime.
func TestMetricsEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	srv := metricsTestServer(t, &logBuf)
	h := srv.routes()

	if code, body := getJSON(t, h, "/score?u=0&v=1"); code != http.StatusOK {
		t.Fatalf("/score status = %d body %v", code, body)
	}
	if code, body := postJSON(t, h, "/ingest", `{"u":"newA","v":"newB"}`); code != http.StatusOK {
		t.Fatalf("/ingest status = %d body %v", code, body)
	} else if body["durable"] != true {
		t.Errorf("ingest not durable: %v", body)
	}

	out := scrapeMetrics(t, h)
	// One family per layer, all necessarily nonzero after the two requests.
	for _, want := range []string{
		`ssf_http_requests_total{endpoint="/score",code="200"} 1`,
		`ssf_http_requests_total{endpoint="/ingest",code="200"} 1`,
		"ssf_score_pairs_total 1",
		"ssf_score_batches_total 1",
		`ssf_extract_stage_duration_seconds_count{stage="hhop"} 1`,
		"ssf_extracts_total 1",
		"ssf_wal_records_total 1",
		"ssf_wal_applied_lsn 1",
		"ssf_ingest_edges_total 1",
		"ssf_ingest_batches_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	for _, family := range []string{
		"ssf_http_request_duration_seconds_bucket",
		"ssf_http_inflight_requests",
		"ssf_score_pair_duration_seconds_bucket",
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("family %q absent from /metrics", family)
		}
	}

	// The ingest purged the extraction cache; scoring again after the graph
	// mutation must still work and repopulate it.
	if code, _ := getJSON(t, h, "/score?u=0&v=1"); code != http.StatusOK {
		t.Fatalf("post-ingest /score failed")
	}

	// Structured request logs: one line per request with a request ID.
	logs := logBuf.String()
	for _, want := range []string{`"msg":"request"`, `"request_id":`, `"endpoint":"/ingest"`, `"status":200`} {
		if !strings.Contains(logs, want) {
			t.Errorf("missing %q in structured log:\n%s", want, logs)
		}
	}
}

// TestHealthzReportsCacheStats checks the /healthz alias and the extraction
// cache section added for SSF methods.
func TestHealthzReportsCacheStats(t *testing.T) {
	var logBuf bytes.Buffer
	srv := metricsTestServer(t, &logBuf)
	h := srv.routes()

	if code, _ := getJSON(t, h, "/score?u=0&v=1"); code != http.StatusOK {
		t.Fatal("score failed")
	}
	code, body := getJSON(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	cache, ok := body["extractionCache"].(map[string]any)
	if !ok {
		t.Fatalf("extractionCache missing from /healthz: %v", body)
	}
	if cache["misses"].(float64) < 1 {
		t.Errorf("cache misses = %v, want >= 1", cache["misses"])
	}
	if cache["capacity"].(float64) != float64(ssflp.DefaultCacheSize) {
		t.Errorf("cache capacity = %v, want %d", cache["capacity"], ssflp.DefaultCacheSize)
	}
}

// TestRequestIDHeaderRoundTrip asserts the serving layer honors a sane
// caller-supplied X-Request-Id end to end.
func TestRequestIDHeaderRoundTrip(t *testing.T) {
	h := testServer(t).routes()
	req := httptest.NewRequest(http.MethodGet, "/score?u=0&v=1", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("X-Request-Id = %q, want trace-me-42", got)
	}
}

// TestBareServerNoTelemetry: a server constructed without initTelemetry
// (as the resilience tests do) must keep serving with no metrics attached.
func TestBareServerNoTelemetry(t *testing.T) {
	srv := testServer(t)
	srv.logger, srv.reg, srv.instr = nil, nil, nil
	srv.ingestedEdges, srv.ingestBatches = nil, nil
	srv.appliedLSNG, srv.snapshotsOK, srv.snapshotErrors = nil, nil, nil
	h := srv.routes()
	if code, _ := getJSON(t, h, "/score?u=0&v=1"); code != http.StatusOK {
		t.Error("bare server /score failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/metrics on bare server = %d, want 404", rec.Code)
	}
	if code, _ := postJSON(t, h, "/ingest", `{"u":"x","v":"y"}`); code != http.StatusOK {
		t.Error("bare server /ingest failed")
	}
}

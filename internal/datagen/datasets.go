package datagen

import "fmt"

// Named dataset identifiers matching Table II of the paper.
const (
	EuEmail  = "Eu-Email"
	Contact  = "Contact"
	Facebook = "Facebook"
	Coauthor = "Co-author"
	Prosper  = "Prosper"
	Slashdot = "Slashdot"
	Digg     = "Digg"
)

// TableII returns the seven dataset configurations with |V|, |E| and time
// span matching Table II of the paper. The growth model and its mixing
// parameters are chosen per dataset family (see the package comment); the
// seed fixes the concrete synthetic instance.
func TableII(seed int64) []Config {
	return []Config{
		{
			Name: EuEmail, Nodes: 309, Edges: 61046, TimeSpan: 803,
			Model: ModelActivityRepeat, RepeatProb: 0.75, Gamma: 0.8,
			FinalBurst: 0.1, Recency: 0.6,
			Seed: seed ^ 0x45754d61, // distinct per-dataset streams
		},
		{
			Name: Contact, Nodes: 274, Edges: 28245, TimeSpan: 96,
			Model: ModelActivityRepeat, RepeatProb: 0.65, Gamma: 0.6,
			FinalBurst: 0.1, Recency: 0.6,
			Seed: seed ^ 0x436f6e74,
		},
		{
			Name: Facebook, Nodes: 4313, Edges: 42346, TimeSpan: 366,
			Model: ModelReplyStar, RepeatProb: 0.35, Gamma: 0.7,
			FinalBurst: 0.12, Recency: 0.6,
			Seed: seed ^ 0x46616365,
		},
		{
			Name: Coauthor, Nodes: 744, Edges: 7034, TimeSpan: 20,
			Model: ModelCommunityTriadic, ClosureProb: 0.6, Communities: 60, Gamma: 0.5,
			FinalBurst: 0.15, Recency: 0.5,
			Seed: seed ^ 0x436f6175,
		},
		{
			Name: Prosper, Nodes: 1264, Edges: 8874, TimeSpan: 60,
			Model: ModelReplyStar, RepeatProb: 0.2, Gamma: 0.6,
			FinalBurst: 0.15, Recency: 0.6,
			Seed: seed ^ 0x50726f73,
		},
		{
			Name: Slashdot, Nodes: 2680, Edges: 9904, TimeSpan: 240,
			Model: ModelReplyStar, RepeatProb: 0.25, Gamma: 0.8,
			FinalBurst: 0.15, Recency: 0.6,
			Seed: seed ^ 0x536c6173,
		},
		{
			Name: Digg, Nodes: 3215, Edges: 9618, TimeSpan: 240,
			Model: ModelReplyStar, RepeatProb: 0.2, Gamma: 0.9,
			FinalBurst: 0.15, Recency: 0.6,
			Seed: seed ^ 0x44696767,
		},
	}
}

// ByName returns the Table II configuration with the given name.
func ByName(name string, seed int64) (Config, error) {
	for _, c := range TableII(seed) {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Names lists the Table II dataset names in paper order.
func Names() []string {
	return []string{EuEmail, Contact, Facebook, Coauthor, Prosper, Slashdot, Digg}
}

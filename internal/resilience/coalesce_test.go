package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoalescerCommitsEveryItemOnce(t *testing.T) {
	var mu sync.Mutex
	var got []int
	c := NewCoalescer(func(items []int) {
		mu.Lock()
		got = append(got, items...)
		mu.Unlock()
	})
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Do(i) }()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("committed %d items, want %d", len(got), n)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("item %d committed twice", v)
		}
		seen[v] = true
	}
}

func TestCoalescerGroupsConcurrentSubmissions(t *testing.T) {
	// Hold the first commit open while followers pile up; the leader's next
	// drain round must then carry the whole backlog as one group.
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	var maxGroup atomic.Int64
	c := NewCoalescer(func(items []int) {
		once.Do(func() { close(first); <-release })
		if n := int64(len(items)); n > maxGroup.Load() {
			maxGroup.Store(n)
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); c.Do(0) }()
	<-first // leader is inside its commit
	const followers = 10
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Do(i) }()
	}
	time.Sleep(100 * time.Millisecond) // let the followers enqueue
	close(release)
	wg.Wait()
	if n := maxGroup.Load(); n < 2 {
		t.Fatalf("largest commit group = %d, want >= 2 (no coalescing happened)", n)
	}
}

func TestCoalescerResultsVisibleAfterDo(t *testing.T) {
	type op struct{ in, out int }
	c := NewCoalescer(func(ops []*op) {
		for _, o := range ops {
			o.out = o.in * 2
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := &op{in: i}
			c.Do(o)
			if o.out != i*2 {
				t.Errorf("op %d: out = %d, want %d", i, o.out, i*2)
			}
		}()
	}
	wg.Wait()
}

func TestCoalescerSequentialUse(t *testing.T) {
	var groups [][]string
	c := NewCoalescer(func(items []string) { groups = append(groups, items) })
	c.Do("a")
	c.Do("b")
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 1 {
		t.Fatalf("sequential submissions must commit alone, got %v", groups)
	}
}

package ssflp

import (
	"errors"
	"testing"
)

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	want := map[string]bool{"Eu-Email": true, "Contact": true, "Facebook": true,
		"Co-author": true, "Prosper": true, "Slashdot": true, "Digg": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected dataset %q", n)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	g, err := GenerateDataset("Co-author", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 744/8 || g.NumEdges() != 7034/8 {
		t.Errorf("scaled stats = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	full, err := GenerateDataset("Co-author", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumNodes() != 744 || full.NumEdges() != 7034 {
		t.Errorf("paper-scale stats = %d nodes, %d edges, want 744/7034",
			full.NumNodes(), full.NumEdges())
	}
	if _, err := GenerateDataset("nope", 1, 2); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestHeuristicScoreFacade(t *testing.T) {
	g := NewGraph(0)
	for _, e := range [][2]NodeID{{0, 2}, {1, 2}, {0, 3}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := HeuristicScore(g, CN, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("CN(0,1) = %v, want 2", got)
	}
	if _, err := HeuristicScore(g, SSFNM, 0, 1); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("non-heuristic method error = %v", err)
	}
	scorer, err := HeuristicScorer(g, Jaccard)
	if err != nil {
		t.Fatal(err)
	}
	if s := scorer(0, 1); s != 1 {
		t.Errorf("Jaccard(0,1) = %v, want 1", s)
	}
	if _, err := HeuristicScorer(g, NMF); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("non-heuristic scorer error = %v", err)
	}
}

package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"ssflp/internal/trace"
	"ssflp/internal/wal"
)

// Body size ceilings. A stream response is bounded by MaxBatch records of at
// most wal.MaxPayload each, but a defensive cap keeps a confused or malicious
// leader from ballooning follower memory; snapshots are whole-network copies
// and get a larger allowance.
const (
	maxStreamBody   = 64 << 20
	maxSnapshotBody = 1 << 30
)

// FollowerConfig wires a Follower to its leader and to the local serving
// layer. Leader, Bootstrap and Apply are required.
type FollowerConfig struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Leader string
	// HTTPClient issues the requests. nil uses a client without a global
	// timeout — long-polls are bounded by PollWait plus the leader's grace,
	// and cancellation flows through Run's context.
	HTTPClient *http.Client
	// BatchMax caps records requested per poll. Default 4096.
	BatchMax int
	// PollWait is the long-poll budget sent to the leader. Default 20s.
	PollWait time.Duration
	// RetryBase/RetryMax bound the exponential full-jitter backoff between
	// failed round-trips. Defaults 100ms and 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes the retry jitter deterministic in tests; 0 derives one from
	// the clock.
	Seed int64
	// Logger receives bootstrap/backoff lines; nil is silent. NewFollower
	// stamps it with component=replication so follower lines are filterable
	// next to request logs.
	Logger *slog.Logger
	// Metrics receives follower-side observations; nil records nothing.
	Metrics *Metrics
	// Tracer, when non-nil, traces bootstraps and applying stream polls; the
	// trace ID rides the traceparent header so the leader's /repl handlers
	// record their side of the same trace, and the follower's log lines
	// carry the ID for log↔trace joins.
	Tracer *trace.Tracer

	// Bootstrap installs a starting state and returns the log position it
	// reflects. snap is the leader's decoded snapshot, or nil when the leader
	// has none yet — then the callee installs the shared base network and
	// returns 0 so streaming starts at LSN 1.
	Bootstrap func(snap *wal.Snapshot) (wal.LSN, error)
	// Apply folds a validated, contiguous batch starting at LSN from into the
	// served state. It must be atomic: either the whole batch is visible to
	// readers afterwards or none of it.
	Apply func(from wal.LSN, events []wal.Event) error
}

// Follower tails a leader's log and keeps the local serving state caught up.
// Run drives it; the LSN accessors are safe to call from any goroutine
// (readiness and health endpoints read them concurrently).
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	rng    *rand.Rand

	applied     atomic.Uint64 // last LSN folded into local state
	durable     atomic.Uint64 // leader's durable LSN at last contact
	lastContact atomic.Int64  // unix nanos of last successful round-trip

	needBootstrap  bool
	bootstrapStart time.Time
	caughtUpOnce   bool
}

// NewFollower validates cfg and returns a Follower ready for Run.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, errors.New("replica: follower needs a leader URL")
	}
	if _, err := url.Parse(cfg.Leader); err != nil {
		return nil, fmt.Errorf("replica: leader URL: %w", err)
	}
	if cfg.Bootstrap == nil || cfg.Apply == nil {
		return nil, errors.New("replica: follower needs Bootstrap and Apply callbacks")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 4096
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 20 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = max(5*time.Second, cfg.RetryBase)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	if cfg.Logger != nil {
		cfg.Logger = cfg.Logger.With(slog.String("component", "replication"))
	}
	return &Follower{
		cfg:           cfg,
		client:        client,
		rng:           rand.New(rand.NewSource(seed)),
		needBootstrap: true,
	}, nil
}

// AppliedLSN is the last log position folded into local serving state.
func (f *Follower) AppliedLSN() wal.LSN { return wal.LSN(f.applied.Load()) }

// DurableLSN is the leader's durable position as of the last contact.
func (f *Follower) DurableLSN() wal.LSN { return wal.LSN(f.durable.Load()) }

// Lag is DurableLSN minus AppliedLSN, floored at zero.
func (f *Follower) Lag() uint64 {
	d, a := f.durable.Load(), f.applied.Load()
	if d <= a {
		return 0
	}
	return d - a
}

// LastContact is when the last round-trip with the leader succeeded; the zero
// time before any contact.
func (f *Follower) LastContact() time.Time {
	ns := f.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Run pulls from the leader until ctx is cancelled, bootstrapping whenever
// needed (first start, or a 410 after falling behind retention) and backing
// off with full jitter on failures. It returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.step(ctx)
		if err == nil {
			failures = 0
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.cfg.Metrics.notePullError()
		failures++
		delay := f.backoff(failures)
		if f.cfg.Logger != nil {
			f.cfg.Logger.Warn("replication pull failed",
				slog.String("leader", f.cfg.Leader),
				slog.Any("error", err),
				slog.Duration("retry_in", delay))
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// step performs one round-trip: a bootstrap when one is pending, a stream
// poll otherwise.
func (f *Follower) step(ctx context.Context) error {
	if f.needBootstrap {
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
		f.needBootstrap = false
	}
	return f.streamOnce(ctx)
}

func (f *Follower) bootstrap(ctx context.Context) (retErr error) {
	f.bootstrapStart = time.Now()
	f.caughtUpOnce = false
	ctx, sp := f.cfg.Tracer.StartRoot(ctx, "repl.bootstrap")
	sp.SetAttr("leader", f.cfg.Leader)
	defer func() { sp.FinishError(retErr) }()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Leader+"/repl/snapshot", nil)
	if err != nil {
		return err
	}
	trace.Inject(ctx, req.Header)
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer drain(resp.Body)

	var snap *wal.Snapshot
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := readCapped(resp.Body, maxSnapshotBody)
		if err != nil {
			return fmt.Errorf("bootstrap: read snapshot: %w", err)
		}
		snap, err = wal.ParseSnapshot(body)
		if err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
		if hdr := resp.Header.Get(HeaderSnapshotLSN); hdr != "" {
			if lsn, perr := strconv.ParseUint(hdr, 10, 64); perr == nil && wal.LSN(lsn) != snap.LSN {
				return fmt.Errorf("bootstrap: snapshot header LSN %d != body LSN %d", lsn, snap.LSN)
			}
		}
	case http.StatusNotFound:
		// Leader has no snapshot yet: start from the shared base and stream
		// the whole log.
	default:
		return fmt.Errorf("bootstrap: leader returned %s", resp.Status)
	}
	from, err := f.cfg.Bootstrap(snap)
	if err != nil {
		return fmt.Errorf("bootstrap: install: %w", err)
	}
	f.applied.Store(uint64(from))
	f.cfg.Metrics.noteBootstrap()
	f.cfg.Metrics.setApplied(uint64(from))
	f.touch()
	sp.SetAttr("applied_lsn", uint64(from))
	sp.SetAttr("from_snapshot", snap != nil)
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("replication bootstrap complete",
			slog.Uint64("applied_lsn", uint64(from)),
			slog.Bool("from_snapshot", snap != nil),
			slog.String("trace_id", trace.TraceIDFromContext(ctx)))
	}
	return nil
}

func (f *Follower) streamOnce(ctx context.Context) error {
	from := wal.LSN(f.applied.Load()) + 1
	// The span is opened before the request so the traceparent header lets
	// the leader's /repl/stream handler record its side of the trace. An
	// empty long poll (204) abandons the span unfinished — capturing every
	// idle 20s poll would drown the ring in "slow" traces that did nothing.
	ctx, sp := f.cfg.Tracer.StartRoot(ctx, "repl.stream")
	sp.SetAttr("leader", f.cfg.Leader)
	sp.SetAttr("from", uint64(from))
	u := fmt.Sprintf("%s/repl/stream?from=%d&max=%d&wait=%s",
		f.cfg.Leader, from, f.cfg.BatchMax, f.cfg.PollWait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		sp.FinishError(err)
		return err
	}
	trace.Inject(ctx, req.Header)
	resp, err := f.client.Do(req)
	if err != nil {
		err = fmt.Errorf("stream: %w", err)
		sp.FinishError(err)
		return err
	}
	defer drain(resp.Body)

	switch resp.StatusCode {
	case http.StatusOK:
		applyErr := func() error {
			body, err := readCapped(resp.Body, maxStreamBody)
			if err != nil {
				return fmt.Errorf("stream: read: %w", err)
			}
			events, err := DecodeStream(body, from)
			if err != nil {
				return fmt.Errorf("stream: %w", err)
			}
			if len(events) == 0 {
				return fmt.Errorf("stream: 200 with empty body")
			}
			sp.SetAttr("events", len(events))
			_, asp := trace.StartSpan(ctx, "repl.apply")
			err = f.cfg.Apply(from, events)
			asp.FinishError(err)
			if err != nil {
				return fmt.Errorf("stream: apply: %w", err)
			}
			applied := uint64(from) + uint64(len(events)) - 1
			f.applied.Store(applied)
			f.updateDurable(resp.Header, applied)
			f.cfg.Metrics.noteApplied(len(events))
			f.cfg.Metrics.setApplied(applied)
			f.touch()
			f.observeLag()
			return nil
		}()
		sp.FinishError(applyErr)
		return applyErr
	case http.StatusNoContent:
		f.updateDurable(resp.Header, f.applied.Load())
		f.touch()
		f.observeLag()
		return nil
	case http.StatusGone:
		// The leader compacted the records we need: re-bootstrap.
		f.needBootstrap = true
		sp.SetAttr("compacted", true)
		sp.Finish()
		if f.cfg.Logger != nil {
			f.cfg.Logger.Warn("replication stream compacted; re-bootstrapping",
				slog.Uint64("from", uint64(from)),
				slog.String("trace_id", trace.TraceIDFromContext(ctx)))
		}
		return nil
	default:
		err := fmt.Errorf("stream: leader returned %s", resp.Status)
		sp.FinishError(err)
		return err
	}
}

// updateDurable folds the leader-reported durable LSN into local state,
// never letting it regress below our own applied position (a snapshot can
// reflect records the header race hasn't reported yet).
func (f *Follower) updateDurable(h http.Header, floor uint64) {
	d := floor
	if hdr := h.Get(HeaderDurableLSN); hdr != "" {
		if v, err := strconv.ParseUint(hdr, 10, 64); err == nil && v > d {
			d = v
		}
	}
	f.durable.Store(d)
	f.cfg.Metrics.setLag(f.Lag())
}

// observeLag records the catch-up duration the first time lag reaches zero
// after a bootstrap.
func (f *Follower) observeLag() {
	if !f.caughtUpOnce && f.Lag() == 0 {
		f.caughtUpOnce = true
		f.cfg.Metrics.noteCatchup(time.Since(f.bootstrapStart).Seconds())
	}
}

func (f *Follower) touch() {
	f.lastContact.Store(time.Now().UnixNano())
}

// backoff is exponential with full jitter: uniform in (0, base*2^(n-1)],
// capped at RetryMax.
func (f *Follower) backoff(failures int) time.Duration {
	ceil := f.cfg.RetryBase << min(failures-1, 16)
	if ceil > f.cfg.RetryMax || ceil <= 0 {
		ceil = f.cfg.RetryMax
	}
	return time.Duration(f.rng.Int63n(int64(ceil))) + 1
}

// readCapped reads r fully, failing when the body exceeds limit.
func readCapped(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("body exceeds %d byte cap", limit)
	}
	return data, nil
}

// drain discards any unread remainder so the connection can be reused.
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

package main

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"ssflp"
	"ssflp/internal/resilience/faultinject"
)

// injectFaults routes the server's scoring through an injector: every
// scoring request first fires the injector (latency, panics), then — if the
// injector let it pass — delegates to the real ScoreBatchCtx. The error each
// batch call ends with is recorded so tests can assert what the workers
// observed.
func injectFaults(srv *server) (*faultinject.Injector, *errLog) {
	inj := &faultinject.Injector{}
	log := &errLog{}
	base := srv.scoreBatch
	srv.scoreBatch = func(ctx context.Context, st *epochState, pairs [][2]ssflp.NodeID, workers int) ([]ssflp.ScoredPair, error) {
		if err := inj.Fire(ctx); err != nil {
			log.add(err)
			return nil, err
		}
		out, err := base(ctx, st, pairs, workers)
		log.add(err)
		return out, err
	}
	return inj, log
}

// errLog records scoring outcomes across goroutines.
type errLog struct {
	mu   sync.Mutex
	errs []error
}

func (l *errLog) add(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.errs = append(l.errs, err)
}

func (l *errLog) last() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.errs) == 0 {
		return nil
	}
	return l.errs[len(l.errs)-1]
}

// waitLast polls for a recorded outcome: the middleware answers the client
// at the deadline without waiting for the scoring goroutine, so the worker's
// observation can land a moment later.
func (l *errLog) waitLast(t *testing.T) error {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		n := len(l.errs)
		l.mu.Unlock()
		if n > 0 {
			return l.last()
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("scoring outcome never recorded")
	return nil
}

func TestDeadlineExpiryReturns504AndWorkersObserveIt(t *testing.T) {
	srv := testServerWith(t, limitsConfig{TopTimeout: 50 * time.Millisecond})
	inj, errs := injectFaults(srv)
	inj.SetLatency(300 * time.Millisecond)
	h := srv.routes()

	code, body := getJSON(t, h, "/top?n=3")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, body %v, want 504", code, body)
	}
	if body["error"] == "" {
		t.Errorf("504 without error body: %v", body)
	}
	if err := errs.waitLast(t); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("scoring observed %v, want context.DeadlineExceeded", err)
	}

	// The server still answers once the latency is gone.
	inj.SetLatency(0)
	if code, _ := getJSON(t, h, "/top?n=3"); code != http.StatusOK {
		t.Errorf("after recovery: %d", code)
	}
}

func TestCancelledClientFreesScoringWorkers(t *testing.T) {
	srv := testServerWith(t, limitsConfig{})
	inj, errs := injectFaults(srv)
	inj.SetLatency(400 * time.Millisecond)
	h := srv.routes()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/top?n=3", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Wait for scoring to start, then abandon the request.
	deadline := time.Now().Add(2 * time.Second)
	for inj.Fires() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}
	if err := errs.waitLast(t); !errors.Is(err, context.Canceled) {
		t.Errorf("scoring observed %v, want context.Canceled", err)
	}
	fired := inj.Fires()
	time.Sleep(100 * time.Millisecond)
	if now := inj.Fires(); now != fired {
		t.Errorf("scoring continued after cancellation: %d -> %d", fired, now)
	}
}

func TestSaturationReturns429WithRetryAfter(t *testing.T) {
	srv := testServerWith(t, limitsConfig{
		MaxInFlight: 1, MaxQueue: -1, QueueWait: 20 * time.Millisecond,
	})
	// MaxQueue -1 normalizes to 0: reject as soon as the slot is busy.
	inj, _ := injectFaults(srv)
	inj.SetLatency(500 * time.Millisecond)
	h := srv.routes()

	firstDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?n=3", nil))
		firstDone <- rec.Code
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inj.Fires() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodGet, "/top?n=3", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated code = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// Probes stay reachable while the scoring path is saturated.
	if code, _ := getJSON(t, h, "/livez"); code != http.StatusOK {
		t.Errorf("livez under saturation = %d", code)
	}
	if code, _ := getJSON(t, h, "/readyz"); code != http.StatusOK {
		t.Errorf("readyz under saturation = %d", code)
	}

	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("in-flight request = %d, want 200", code)
	}
}

func TestInjectedPanicYields500AndServerSurvives(t *testing.T) {
	srv := testServerWith(t, limitsConfig{})
	inj, _ := injectFaults(srv)
	h := srv.routes()

	inj.PanicNext(1)
	code, body := getJSON(t, h, "/top?n=3")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicked request = %d %v, want 500", code, body)
	}
	// The process survived; the very next request succeeds.
	if code, body := getJSON(t, h, "/top?n=3"); code != http.StatusOK {
		t.Errorf("request after panic = %d %v", code, body)
	}
}

func TestScoringPanicErrorMapsTo500(t *testing.T) {
	srv := testServerWith(t, limitsConfig{})
	srv.scoreBatch = func(ctx context.Context, st *epochState, pairs [][2]ssflp.NodeID, workers int) ([]ssflp.ScoredPair, error) {
		// What ScoreBatchCtx returns when a scoring worker panicked.
		return nil, ssflp.ErrScorePanic
	}
	h := srv.routes()
	if code, _ := getJSON(t, h, "/score?u=0&v=1"); code != http.StatusInternalServerError {
		t.Errorf("worker-panic error = %d, want 500", code)
	}
}

func TestServeDrainsInFlightRequestsOnShutdown(t *testing.T) {
	srv := testServerWith(t, limitsConfig{})
	inj, _ := injectFaults(srv)
	inj.SetLatency(300 * time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.routes()}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, httpSrv, ln, 5*time.Second, func() { srv.setReady(false) })
	}()

	url := "http://" + ln.Addr().String() + "/top?n=3"
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(2 * time.Second)
	for inj.Fires() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if inj.Fires() == 0 {
		t.Fatal("request never reached scoring")
	}
	cancel() // the moral equivalent of SIGTERM

	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request during drain = %d, want 200", code)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
	if srv.ready.Load() {
		t.Error("server still ready after shutdown began")
	}
	if code, _ := getJSON(t, srv.routes(), "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
}

func TestTopNMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scored := make([]ssflp.ScoredPair, 500)
	for i := range scored {
		scored[i] = ssflp.ScoredPair{
			U: ssflp.NodeID(rng.Intn(40)),
			V: ssflp.NodeID(rng.Intn(40)),
			// Few distinct scores so ties exercise the (U, V) tie-break.
			Score: float64(rng.Intn(5)),
		}
	}
	for _, n := range []int{1, 3, 10, 499, 500, 501} {
		ref := append([]ssflp.ScoredPair(nil), scored...)
		sort.Slice(ref, func(i, j int) bool { return worseCand(ref[j], ref[i]) })
		if len(ref) > n {
			ref = ref[:n]
		}
		got := topN(scored, n)
		if len(got) != len(ref) {
			t.Fatalf("n=%d: len = %d, want %d", n, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d rank %d: got %+v, want %+v", n, i, got[i], ref[i])
			}
		}
	}
}

func TestTopEndpointOrdering(t *testing.T) {
	h := testServer(t).routes()
	code, body := getJSON(t, h, "/top?n=8")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	cands := body["candidates"].([]any)
	var prev float64 = 1e18
	for i, c := range cands {
		score := c.(map[string]any)["score"].(float64)
		if score > prev {
			t.Fatalf("candidate %d out of order: %v > %v", i, score, prev)
		}
		prev = score
	}
}

func TestProbeEndpoints(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	if code, body := getJSON(t, h, "/livez"); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("livez = %d %v", code, body)
	}
	if code, body := getJSON(t, h, "/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("readyz = %d %v", code, body)
	}
	srv.setReady(false)
	if code, _ := getJSON(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after setReady(false) = %d", code)
	}
	if code, _ := getJSON(t, h, "/livez"); code != http.StatusOK {
		t.Error("livez must stay 200 while draining")
	}
}

package main

import (
	"context"
	"log/slog"
	"runtime/pprof"
	"time"

	"ssflp"
	"ssflp/internal/trace"
)

// The candidate precomputer turns the hot unsharded GET /top from an
// O(candidates) scoring scan per request into a lookup: a background
// goroutine rebuilds a per-node top-K index after every epoch swap (through
// the shared-frontier batch kernel, one source-side BFS per node) and
// publishes it atomically. Read-side contract, enforced by topFromIndex:
//
//   - exact epoch: the request's pinned epoch equals the index epoch — serve
//     the global top-n directly (identical to the scan: both rank by the
//     same deterministic order, and the global top-n of the per-node top-K
//     union is exact for n <= K, since a pair outside its source's top-K is
//     outranked by at least K same-source pairs).
//   - stale within budget: the index trails the pinned epoch by at most the
//     configured number of epochs — rerank the precomputed candidates
//     against the pinned epoch: drop pairs that have since become edges,
//     rescore the rest through the scoring seam. Candidates that only enter
//     the top set in the newer epochs can be missed until the next build;
//     that approximation window is the documented staleness contract
//     (DESIGN.md §12).
//   - otherwise (no index, index too stale, n > K, or sharded request):
//     full scan. The index covers the whole enumeration, so it can never
//     honor a shard partition.
//
// A candidate from a superseded epoch is thus never served as-is: it either
// survives the rerank's edge filter + rescore against the request's own
// epoch, or the request falls through to the scan.

// topPrecomputeConfig carries the precomputer's knobs; the zero value
// disables it (bare test structs, -top-precompute=false).
type topPrecomputeConfig struct {
	enabled  bool
	perNodeK int           // per-node/global top-K kept; also the max fast-path n
	stale    uint64        // rerank budget: max epochs the index may trail
	budget   int           // max candidates scored per build (stride widens past it)
	interval time.Duration // epoch poll cadence of the build loop
}

// topIndex is one immutable precomputed candidate index, published through
// server.topIdx.
type topIndex struct {
	epoch    uint64
	perNodeK int
	sampled  bool                 // the build strided the pair enumeration
	global   []ssflp.ScoredPair   // best perNodeK pairs overall, descending
	perNode  [][]ssflp.ScoredPair // per source node: its best perNodeK pairs, descending
}

// topFromIndex tries to answer an unsharded /top request from the published
// index. ok reports whether the request was served; when false the caller
// runs the full scan.
func (s *server) topFromIndex(ctx context.Context, st *epochState, n int) (best []ssflp.ScoredPair, sampled, ok bool, err error) {
	idx := s.topIdx.Load()
	if idx == nil || n > idx.perNodeK || idx.epoch > st.snap.Epoch {
		// No index yet, the request wants more rows than the index keeps, or
		// the request pinned an epoch older than the index was built from.
		return nil, false, false, nil
	}
	lag := st.snap.Epoch - idx.epoch
	if lag == 0 {
		s.topPreHits.Inc()
		s.topPreStaleness.Set(0)
		best = idx.global
		if len(best) > n {
			best = best[:n]
		}
		out := make([]ssflp.ScoredPair, len(best))
		copy(out, best)
		return out, idx.sampled, true, nil
	}
	if lag > s.topPre.stale {
		return nil, false, false, nil
	}
	// Stale within budget: rerank the precomputed global candidates against
	// the request's epoch. Pairs that became edges since the build are
	// filtered against the current view; survivors are rescored through the
	// scoring seam so the answer reflects the pinned epoch's model inputs.
	view := st.snap.Static()
	pairs := make([][2]ssflp.NodeID, 0, len(idx.global))
	for _, sp := range idx.global {
		if view.HasEdge(sp.U, sp.V) {
			continue
		}
		pairs = append(pairs, [2]ssflp.NodeID{sp.U, sp.V})
	}
	if len(pairs) < n {
		// Too many precomputed candidates got ingested away; a rerank could
		// return fewer rows than a scan would.
		return nil, false, false, nil
	}
	scored, err := s.scoreBatch(ctx, st, pairs, 0)
	if err != nil {
		return nil, false, false, err
	}
	s.topPreHits.Inc()
	s.topPreStaleness.Set(float64(lag))
	s.topScored.Add(uint64(len(scored)))
	return topN(scored, n), idx.sampled, true, nil
}

// buildTopIndex scores the epoch's stride-sampled absent pairs and returns
// the per-node/global top-K index. The same enumeration, stride base and
// filters as computeTopScan keep exact-epoch fast-path answers identical to
// scan answers; the work budget can only widen the stride further (then the
// index is marked sampled).
func (s *server) buildTopIndex(ctx context.Context, st *epochState) (*topIndex, error) {
	view := st.snap.Static()
	nodes := st.snap.Stats.NumNodes
	total := nodes * (nodes - 1) / 2
	stride := 1
	if total > topCandidateLimit {
		stride = total/topCandidateLimit + 1
	}
	if budget := s.topPre.budget; budget > 0 && total/stride > budget {
		stride = total/budget + 1
	}
	k := s.topPre.perNodeK
	idx := &topIndex{
		epoch:    st.snap.Epoch,
		perNodeK: k,
		sampled:  stride > 1,
		perNode:  make([][]ssflp.ScoredPair, nodes),
	}
	batchable := s.scoreCands != nil && st.binding != nil && st.binding.SupportsBatch()
	var groups []srcGroup
	pairIdx := 0
	for u := 0; u < nodes; u++ {
		var cands []ssflp.NodeID
		for v := u + 1; v < nodes; v++ {
			pairIdx++
			if pairIdx%topCtxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if pairIdx%stride != 0 {
				continue
			}
			if view.HasEdge(ssflp.NodeID(u), ssflp.NodeID(v)) {
				continue
			}
			cands = append(cands, ssflp.NodeID(v))
		}
		if len(cands) > 0 {
			groups = append(groups, srcGroup{u: ssflp.NodeID(u), cands: cands})
		}
	}
	// Score all groups up front — sources fanned across workers on the batch
	// path, one flat scoreBatch call otherwise — then fold the per-group
	// results into the heaps in source order, so the global ranking is built
	// in the same deterministic order as the scan's.
	var results [][]ssflp.ScoredPair
	if batchable {
		rs, err := s.scoreGroups(ctx, st, groups)
		if err != nil {
			return nil, err
		}
		results = rs
	} else {
		var pairs [][2]ssflp.NodeID
		for _, g := range groups {
			for _, v := range g.cands {
				pairs = append(pairs, [2]ssflp.NodeID{g.u, v})
			}
		}
		sc, err := s.scoreBatch(ctx, st, pairs, 0)
		if err != nil {
			return nil, err
		}
		results = make([][]ssflp.ScoredPair, len(groups))
		off := 0
		for gi, g := range groups {
			results[gi] = sc[off : off+len(g.cands)]
			off += len(g.cands)
		}
	}
	global := make(candHeap, 0, k+1)
	scored := 0
	for gi, g := range groups {
		sc := results[gi]
		scored += len(sc)
		nodeHeap := make(candHeap, 0, k+1)
		for _, sp := range sc {
			pushTop(&nodeHeap, sp, k)
			pushTop(&global, sp, k)
		}
		idx.perNode[g.u] = drainTop(nodeHeap)
	}
	idx.global = drainTop(global)
	s.topScored.Add(uint64(scored))
	return idx, nil
}

// buildTopOnce rebuilds and publishes the index when the served epoch has
// moved past it. Synchronous, so tests and benchmarks can drive the
// precomputer without the background loop. Each real build runs under its
// own root trace (background work has no request to join), with per-stage
// extraction spans attached like any /top scan.
func (s *server) buildTopOnce(ctx context.Context) error {
	st := s.cur.Load()
	if st == nil {
		return nil
	}
	if idx := s.topIdx.Load(); idx != nil && idx.epoch == st.snap.Epoch {
		return nil
	}
	bctx, sp := s.tracer.StartRoot(ctx, "top_precompute.build")
	sp.SetAttr("epoch", st.snap.Epoch)
	idx, err := s.buildTopIndex(bctx, st)
	if err != nil {
		sp.FinishError(err)
		if ctx.Err() == nil {
			// Logged here, not in the loop: this scope still holds the build
			// context, so the line carries the trace ID the capture landed
			// under and logs join /debug/traces on one ID.
			attrs := []any{slog.Any("err", err)}
			if id := trace.TraceIDFromContext(bctx); id != "" {
				attrs = append(attrs, slog.String("trace_id", id))
			}
			s.slogger().With(slog.String("component", "top_precompute")).
				Warn("top precompute build failed", attrs...)
		}
		return err
	}
	sp.SetAttr("sampled", idx.sampled)
	sp.Finish()
	s.topIdx.Store(idx)
	s.topPreBuilds.Inc()
	return nil
}

// startTopPrecompute launches the background build loop: rebuild whenever a
// poll finds the served epoch past the published index, exit with ctx. Run
// only on unsharded serving paths — sharded /top never consults the index.
// Build failures log inside buildTopOnce with a stable component attr and
// the build's trace ID, so /debug/traces and logs join on one ID.
func (s *server) startTopPrecompute(ctx context.Context) {
	if !s.topPre.enabled || s.topPre.interval <= 0 || s.topPre.perNodeK <= 0 {
		return
	}
	go func() {
		// Label the loop's goroutine so CPU profiles separate background
		// index builds from request-driven scoring; the scoring worker pools
		// inherit the label through the build context.
		ctx := pprof.WithLabels(ctx, pprof.Labels("stage", "top_precompute"))
		pprof.SetGoroutineLabels(ctx)
		t := time.NewTicker(s.topPre.interval)
		defer t.Stop()
		for {
			_ = s.buildTopOnce(ctx)
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

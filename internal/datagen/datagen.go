// Package datagen generates synthetic dynamic networks standing in for the
// paper's seven real-world datasets (Table II), which cannot be downloaded
// in this offline environment. Each generator produces timestamped
// multi-edges through a growth process chosen to mimic the qualitative
// structure of its dataset family:
//
//   - ModelActivityRepeat (Eu-Email, Contact): a small, dense population with
//     power-law activity and heavy repeat interactions — most new links
//     duplicate existing partnerships, as in e-mail/proximity data.
//   - ModelCommunityTriadic (Co-author, Facebook): community-structured
//     growth with triadic closure — links form inside small groups and
//     between friends of friends.
//   - ModelReplyStar (Prosper, Slashdot, Digg): preferential-attachment reply
//     networks — ordinary users attach to celebrity hubs.
//
// The named configurations in datasets.go match the Table II statistics
// (|V|, |E|, time span) exactly; average degree follows from |V| and |E|.
package datagen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ssflp/internal/graph"
)

// ModelKind selects the growth process.
type ModelKind int

const (
	// ModelActivityRepeat generates dense repeat-interaction networks.
	ModelActivityRepeat ModelKind = iota + 1
	// ModelCommunityTriadic generates community + triadic-closure networks.
	ModelCommunityTriadic
	// ModelReplyStar generates hub-dominated reply networks.
	ModelReplyStar
)

// String implements fmt.Stringer.
func (m ModelKind) String() string {
	switch m {
	case ModelActivityRepeat:
		return "activity-repeat"
	case ModelCommunityTriadic:
		return "community-triadic"
	case ModelReplyStar:
		return "reply-star"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(m))
	}
}

// ErrBadConfig is returned for invalid generator configurations.
var ErrBadConfig = errors.New("datagen: invalid config")

// Config parameterizes a synthetic dynamic network.
type Config struct {
	// Name labels the dataset in experiment output.
	Name string
	// Nodes is |V|; all node ids [0, Nodes) exist in the output graph.
	Nodes int
	// Edges is |E| counting multi-edges.
	Edges int
	// TimeSpan is the number of distinct integer timestamps [1, TimeSpan].
	TimeSpan int64
	// Model selects the growth process.
	Model ModelKind
	// RepeatProb is the probability a new link repeats an existing
	// partnership (ModelActivityRepeat, ModelReplyStar).
	RepeatProb float64
	// ClosureProb is the probability a new link closes a triangle
	// (ModelCommunityTriadic).
	ClosureProb float64
	// Communities is the number of planted communities
	// (ModelCommunityTriadic).
	Communities int
	// Gamma skews node activity: weight(u) ∝ (rank_u)^(-Gamma). Zero means
	// uniform activity.
	Gamma float64
	// FinalBurst is the fraction of edges emitted at the very last
	// timestamp (the evaluation timestamp l_t). Real interaction datasets
	// are bursty; a burst also gives the paper's split protocol (positives
	// = links at l_t) a usable sample size at any scale. Zero spreads edges
	// uniformly.
	FinalBurst float64
	// Recency biases repeat-partner choice toward recent partners: with
	// probability Recency the partner is drawn from the most recent 20% of
	// past interactions instead of uniformly. This makes recent history
	// genuinely more predictive — the temporal signal the SSF influence
	// decay is designed to exploit.
	Recency float64
	// Seed drives all randomness; equal seeds give identical graphs.
	Seed int64
}

func (c Config) validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("%w: nodes %d < 3", ErrBadConfig, c.Nodes)
	}
	if c.Edges < 1 {
		return fmt.Errorf("%w: edges %d < 1", ErrBadConfig, c.Edges)
	}
	if c.TimeSpan < 1 {
		return fmt.Errorf("%w: time span %d < 1", ErrBadConfig, c.TimeSpan)
	}
	switch c.Model {
	case ModelActivityRepeat, ModelCommunityTriadic, ModelReplyStar:
	default:
		return fmt.Errorf("%w: model %d", ErrBadConfig, int(c.Model))
	}
	if c.RepeatProb < 0 || c.RepeatProb > 1 {
		return fmt.Errorf("%w: repeat prob %g", ErrBadConfig, c.RepeatProb)
	}
	if c.ClosureProb < 0 || c.ClosureProb > 1 {
		return fmt.Errorf("%w: closure prob %g", ErrBadConfig, c.ClosureProb)
	}
	if c.Model == ModelCommunityTriadic && c.Communities < 1 {
		return fmt.Errorf("%w: communities %d < 1", ErrBadConfig, c.Communities)
	}
	if c.FinalBurst < 0 || c.FinalBurst > 0.5 {
		return fmt.Errorf("%w: final burst %g outside [0, 0.5]", ErrBadConfig, c.FinalBurst)
	}
	if c.Recency < 0 || c.Recency > 1 {
		return fmt.Errorf("%w: recency %g", ErrBadConfig, c.Recency)
	}
	return nil
}

// Scale returns a copy of the config shrunk by the given divisor (nodes,
// edges, and time span, floored at small minimums) for fast tests and
// benchmarks.
func Scale(c Config, divisor int) Config {
	if divisor <= 1 {
		return c
	}
	c.Nodes = max(c.Nodes/divisor, 10)
	c.Edges = max(c.Edges/divisor, 30)
	c.TimeSpan = max(c.TimeSpan/int64(divisor), 5)
	return c
}

// generator carries the evolving state shared by all models.
type generator struct {
	cfg      Config
	rng      *rand.Rand
	g        *graph.Graph
	weights  []float64      // activity weight per node
	cumW     []float64      // prefix sums of weights over the active range
	partners [][]int32      // per-node multiset of past partners
	ends     []graph.NodeID // endpoint list for degree-proportional picks
	comm     []int          // community per node (community model)
}

// Generate builds the synthetic dynamic network for the configuration.
func Generate(cfg Config) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gen := &generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		g:        graph.New(cfg.Nodes),
		partners: make([][]int32, cfg.Nodes),
	}
	gen.g.EnsureNodes(cfg.Nodes)
	gen.initWeights()
	if cfg.Model == ModelCommunityTriadic {
		gen.comm = make([]int, cfg.Nodes)
		for i := range gen.comm {
			gen.comm[i] = gen.rng.Intn(cfg.Communities)
		}
	}
	for i := 0; i < cfg.Edges; i++ {
		ts := timestampForBurst(i, cfg.Edges, cfg.TimeSpan, cfg.FinalBurst)
		active := gen.activeCount(i)
		var u, v graph.NodeID
		switch cfg.Model {
		case ModelActivityRepeat:
			u, v = gen.pickActivityRepeat(active)
		case ModelCommunityTriadic:
			u, v = gen.pickCommunityTriadic(active)
		case ModelReplyStar:
			u, v = gen.pickReplyStar(active)
		}
		if u == v {
			// Degenerate draw: shift v to a guaranteed-distinct active node
			// so the configured edge count is met exactly.
			v = graph.NodeID((int(u) + 1 + gen.rng.Intn(active-1)) % active)
		}
		if err := gen.g.AddEdge(u, v, ts); err != nil {
			return nil, fmt.Errorf("datagen: %w", err)
		}
		gen.partners[u] = append(gen.partners[u], int32(v))
		gen.partners[v] = append(gen.partners[v], int32(u))
		gen.ends = append(gen.ends, u, v)
	}
	return gen.g, nil
}

// timestampFor spreads edge i uniformly over [1, span].
func timestampFor(i, edges int, span int64) graph.Timestamp {
	ts := 1 + graph.Timestamp(int64(i)*span/int64(edges))
	if ts > graph.Timestamp(span) {
		ts = graph.Timestamp(span)
	}
	return ts
}

// timestampForBurst spreads the first (1−burst) of the edges uniformly over
// [1, span−1] and assigns the final burst fraction to the last timestamp.
func timestampForBurst(i, edges int, span int64, burst float64) graph.Timestamp {
	if burst == 0 || span < 2 {
		return timestampFor(i, edges, span)
	}
	spread := edges - int(burst*float64(edges))
	if i >= spread {
		return graph.Timestamp(span)
	}
	return timestampFor(i, spread, span-1)
}

// repeatPartnerRecency returns a past partner of u, biased toward recent
// interactions per cfg.Recency, or -1 when u has no history.
func (g *generator) repeatPartnerRecency(u graph.NodeID) graph.NodeID {
	ps := g.partners[u]
	if len(ps) == 0 {
		return -1
	}
	if g.cfg.Recency > 0 && g.rng.Float64() < g.cfg.Recency {
		// Partner lists are append-ordered, so the tail holds the most
		// recent interactions; draw from the last 20% (at least one).
		window := max(len(ps)/5, 1)
		return graph.NodeID(ps[len(ps)-1-g.rng.Intn(window)])
	}
	return graph.NodeID(ps[g.rng.Intn(len(ps))])
}

// initWeights assigns Zipf-like activity weights over a random permutation
// of node ids (so id order carries no signal) and builds prefix sums.
func (g *generator) initWeights() {
	n := g.cfg.Nodes
	g.weights = make([]float64, n)
	perm := g.rng.Perm(n)
	for rank, node := range perm {
		if g.cfg.Gamma == 0 {
			g.weights[node] = 1
		} else {
			g.weights[node] = math.Pow(float64(rank+1), -g.cfg.Gamma)
		}
	}
	g.cumW = make([]float64, n+1)
	for i := 0; i < n; i++ {
		g.cumW[i+1] = g.cumW[i] + g.weights[i]
	}
}

// activeCount implements gradual node arrival: the usable node prefix grows
// linearly with the produced edge count, starting at a small core.
func (g *generator) activeCount(edgeIdx int) int {
	minActive := min(10, g.cfg.Nodes)
	grown := minActive + (g.cfg.Nodes-minActive)*edgeIdx/max(g.cfg.Edges-1, 1)
	return max(minActive, min(grown+1, g.cfg.Nodes))
}

// pickByActivity samples a node in [0, active) proportional to activity.
func (g *generator) pickByActivity(active int) graph.NodeID {
	total := g.cumW[active]
	if total == 0 {
		return graph.NodeID(g.rng.Intn(active))
	}
	x := g.rng.Float64() * total
	lo, hi := 0, active
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cumW[mid+1] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= active {
		lo = active - 1
	}
	return graph.NodeID(lo)
}

// pickByDegree samples a node degree-proportionally from the endpoint list,
// falling back to activity when the graph is still empty.
func (g *generator) pickByDegree(active int) graph.NodeID {
	if len(g.ends) == 0 {
		return g.pickByActivity(active)
	}
	return g.ends[g.rng.Intn(len(g.ends))]
}

// repeatPartner returns a uniformly chosen past partner of u, or -1.
func (g *generator) repeatPartner(u graph.NodeID) graph.NodeID {
	ps := g.partners[u]
	if len(ps) == 0 {
		return -1
	}
	return graph.NodeID(ps[g.rng.Intn(len(ps))])
}

// pickActivityRepeat: u by activity; v repeats a past partner with
// RepeatProb, otherwise an activity-weighted fresh contact.
func (g *generator) pickActivityRepeat(active int) (graph.NodeID, graph.NodeID) {
	u := g.pickByActivity(active)
	if g.rng.Float64() < g.cfg.RepeatProb {
		if v := g.repeatPartnerRecency(u); v >= 0 {
			return u, v
		}
	}
	return u, g.pickByActivity(active)
}

// pickCommunityTriadic: u by activity; v closes a triangle with ClosureProb
// (random partner-of-partner), otherwise a random member of u's community.
func (g *generator) pickCommunityTriadic(active int) (graph.NodeID, graph.NodeID) {
	u := g.pickByActivity(active)
	if g.rng.Float64() < g.cfg.ClosureProb {
		if w := g.repeatPartner(u); w >= 0 {
			if v := g.repeatPartner(w); v >= 0 && v != u {
				return u, v
			}
		}
	}
	// Same-community contact: rejection sample a few times, fall back to any.
	for attempt := 0; attempt < 8; attempt++ {
		v := g.pickByActivity(active)
		if v != u && g.comm[v] == g.comm[u] {
			return u, v
		}
	}
	return u, g.pickByActivity(active)
}

// pickReplyStar: u by activity (the commenter); v by degree (the celebrity),
// with RepeatProb of replying to a previous contact again.
func (g *generator) pickReplyStar(active int) (graph.NodeID, graph.NodeID) {
	u := g.pickByActivity(active)
	if g.rng.Float64() < g.cfg.RepeatProb {
		if v := g.repeatPartnerRecency(u); v >= 0 {
			return u, v
		}
	}
	return u, g.pickByDegree(active)
}

package core

import (
	"container/list"
	"sync"

	"ssflp/internal/graph"
)

// CachingExtractor memoizes SSF vectors per (unordered) node pair with an
// LRU eviction policy. The underlying history graph is immutable for the
// extractor's lifetime, so cached vectors never go stale; serving workloads
// (the ssf-serve /top endpoint, repeated ScoreBatch calls) hit the same
// pairs repeatedly and skip the O(K³ + K|V_h|²) extraction.
// Safe for concurrent use.
type CachingExtractor struct {
	inner *Extractor

	mu       sync.Mutex
	capacity int
	entries  map[pairKey]*list.Element
	order    *list.List // front = most recently used
	hits     int64
	misses   int64
}

type pairKey struct{ u, v graph.NodeID }

type cacheEntry struct {
	key pairKey
	vec []float64
}

// DefaultCacheSize bounds the memoized pair count when no capacity is given.
const DefaultCacheSize = 4096

// NewCachingExtractor wraps an extractor with an LRU cache of the given
// capacity (0 selects DefaultCacheSize).
func NewCachingExtractor(inner *Extractor, capacity int) *CachingExtractor {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachingExtractor{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[pairKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// Extract returns the SSF vector of (a, b), from cache when available. The
// returned slice is shared across callers and must not be mutated.
func (c *CachingExtractor) Extract(a, b graph.NodeID) ([]float64, error) {
	key := pairKey{u: min(a, b), v: max(a, b)}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		vec := el.Value.(*cacheEntry).vec
		c.mu.Unlock()
		return vec, nil
	}
	c.misses++
	c.mu.Unlock()

	// Extraction runs outside the lock; concurrent misses on the same pair
	// compute twice and the second insert wins — harmless, results are
	// deterministic.
	vec, err := c.inner.Extract(a, b)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).vec, nil
	}
	el := c.order.PushFront(&cacheEntry{key: key, vec: vec})
	c.entries[key] = el
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	return vec, nil
}

// Stats reports cache hits, misses and the current entry count.
func (c *CachingExtractor) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

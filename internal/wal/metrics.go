package wal

import (
	"time"

	"ssflp/internal/telemetry"
)

// Metrics holds the WAL's telemetry handles. Pass one via Options.Metrics;
// a nil *Metrics (the default) records nothing. All note/set methods are
// nil-receiver-safe so the log never guards observation sites.
type Metrics struct {
	records      *telemetry.Counter
	batches      *telemetry.Counter
	bytes        *telemetry.Counter
	appendErrors *telemetry.Counter
	rotations    *telemetry.Counter
	truncated    *telemetry.Counter
	fsync        *telemetry.Histogram

	liveSegments  *telemetry.Gauge
	recRecords    *telemetry.Gauge
	recDropped    *telemetry.Gauge
	recQuarantine *telemetry.Gauge
	recTruncated  *telemetry.Gauge
}

// NewMetrics registers the WAL metric families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		records: reg.Counter("ssf_wal_records_total",
			"Records appended to the write-ahead log."),
		batches: reg.Counter("ssf_wal_append_batches_total",
			"Append batches (one flush, and under SyncAlways one fsync, each)."),
		bytes: reg.Counter("ssf_wal_append_bytes_total",
			"Encoded record bytes appended to the log."),
		appendErrors: reg.Counter("ssf_wal_append_errors_total",
			"Appends refused or failed (including sticky-error rejections)."),
		rotations: reg.Counter("ssf_wal_segment_rotations_total",
			"Active-segment rotations (seal + create)."),
		truncated: reg.Counter("ssf_wal_segments_truncated_total",
			"Sealed segments deleted by snapshot-driven truncation."),
		fsync: reg.Histogram("ssf_wal_fsync_duration_seconds",
			"fsync latency on the active segment (appends, background sync, rotation seals).",
			nil),
		liveSegments: reg.Gauge("ssf_wal_live_segments",
			"Segments currently in the live chain."),
		recRecords: reg.Gauge("ssf_wal_recovery_records",
			"Valid records found by the last recovery (Open)."),
		recDropped: reg.Gauge("ssf_wal_recovery_dropped_bytes",
			"Bytes discarded repairing a torn tail during the last recovery."),
		recQuarantine: reg.Gauge("ssf_wal_recovery_quarantined_segments",
			"Segments quarantined during the last recovery."),
		recTruncated: reg.Gauge("ssf_wal_recovery_truncated_tail",
			"1 when the last recovery truncated a torn or corrupt tail, else 0."),
	}
}

func (m *Metrics) noteAppend(records int, bytes int64) {
	if m == nil {
		return
	}
	m.records.Add(uint64(records))
	m.batches.Inc()
	m.bytes.Add(uint64(bytes))
}

func (m *Metrics) noteAppendError() {
	if m != nil {
		m.appendErrors.Inc()
	}
}

func (m *Metrics) noteFsync(start time.Time) {
	if m != nil {
		m.fsync.ObserveSince(start)
	}
}

func (m *Metrics) noteRotation() {
	if m != nil {
		m.rotations.Inc()
	}
}

func (m *Metrics) noteTruncated(n int) {
	if m != nil {
		m.truncated.Add(uint64(n))
	}
}

func (m *Metrics) setSegments(n int) {
	if m != nil {
		m.liveSegments.Set(float64(n))
	}
}

// setRecovery publishes the outcome of Open's repair pass.
func (m *Metrics) setRecovery(st RecoveryStatus) {
	if m == nil {
		return
	}
	m.recRecords.Set(float64(st.Records))
	m.recDropped.Set(float64(st.DroppedBytes))
	m.recQuarantine.Set(float64(st.Quarantined))
	if st.TruncatedTail {
		m.recTruncated.Set(1)
	} else {
		m.recTruncated.Set(0)
	}
	m.liveSegments.Set(float64(st.Segments))
}

package eval

import (
	"fmt"
	"math"
	"sort"
)

// rankOrder returns sample indices sorted by score descending with a
// deterministic tie-break on the original index.
func rankOrder(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

func checkRanking(scores []float64, labels []int) error {
	if len(scores) == 0 {
		return ErrNoSamples
	}
	if len(scores) != len(labels) {
		return fmt.Errorf("%w: %d vs %d", ErrBadShape, len(scores), len(labels))
	}
	return nil
}

// PrecisionAtK returns the fraction of true links among the K highest-scored
// candidates — the ranking metric unsupervised link predictors are usually
// reported with (complements the paper's AUC/F1).
func PrecisionAtK(scores []float64, labels []int, k int) (float64, error) {
	if err := checkRanking(scores, labels); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("eval: precision@k needs k >= 1, got %d", k)
	}
	idx := rankOrder(scores)
	if k > len(idx) {
		k = len(idx)
	}
	hits := 0
	for _, i := range idx[:k] {
		if labels[i] == 1 {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// RecallAtK returns the fraction of all true links captured in the top K.
func RecallAtK(scores []float64, labels []int, k int) (float64, error) {
	if err := checkRanking(scores, labels); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("eval: recall@k needs k >= 1, got %d", k)
	}
	total := 0
	for _, l := range labels {
		if l == 1 {
			total++
		}
	}
	if total == 0 {
		return 0, ErrOneClass
	}
	idx := rankOrder(scores)
	if k > len(idx) {
		k = len(idx)
	}
	hits := 0
	for _, i := range idx[:k] {
		if labels[i] == 1 {
			hits++
		}
	}
	return float64(hits) / float64(total), nil
}

// AveragePrecision returns the mean of precision@rank over the ranks of the
// true links (AP; averaging it over queries gives MAP).
func AveragePrecision(scores []float64, labels []int) (float64, error) {
	if err := checkRanking(scores, labels); err != nil {
		return 0, err
	}
	idx := rankOrder(scores)
	var sum float64
	hits := 0
	for rank, i := range idx {
		if labels[i] == 1 {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0, ErrOneClass
	}
	return sum / float64(hits), nil
}

// NDCGAtK returns the normalized discounted cumulative gain of the top K
// with binary relevance.
func NDCGAtK(scores []float64, labels []int, k int) (float64, error) {
	if err := checkRanking(scores, labels); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("eval: ndcg@k needs k >= 1, got %d", k)
	}
	idx := rankOrder(scores)
	if k > len(idx) {
		k = len(idx)
	}
	var dcg float64
	for rank, i := range idx[:k] {
		if labels[i] == 1 {
			dcg += 1 / math.Log2(float64(rank+2))
		}
	}
	total := 0
	for _, l := range labels {
		if l == 1 {
			total++
		}
	}
	if total == 0 {
		return 0, ErrOneClass
	}
	ideal := 0.0
	for rank := 0; rank < min(k, total); rank++ {
		ideal += 1 / math.Log2(float64(rank+2))
	}
	return dcg / ideal, nil
}

// RankingReport bundles the ranking metrics for one scored sample set.
type RankingReport struct {
	PrecisionAt10 float64
	RecallAt10    float64
	AP            float64
	NDCGAt10      float64
}

// Ranking computes the standard report at cutoff 10.
func Ranking(scores []float64, labels []int) (RankingReport, error) {
	var r RankingReport
	var err error
	if r.PrecisionAt10, err = PrecisionAtK(scores, labels, 10); err != nil {
		return r, err
	}
	if r.RecallAt10, err = RecallAtK(scores, labels, 10); err != nil {
		return r, err
	}
	if r.AP, err = AveragePrecision(scores, labels); err != nil {
		return r, err
	}
	if r.NDCGAt10, err = NDCGAtK(scores, labels, 10); err != nil {
		return r, err
	}
	return r, nil
}

package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteTable3CSV emits Table III cells as CSV (dataset, method, auc, f1),
// the format downstream plotting scripts consume.
func WriteTable3CSV(w io.Writer, cells []Table3Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "method", "auc", "f1"}); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, c := range cells {
		rec := []string{
			c.Dataset,
			c.Method,
			strconv.FormatFloat(c.AUC, 'f', 6, 64),
			strconv.FormatFloat(c.F1, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv flush: %w", err)
	}
	return nil
}

// WriteKSweepCSV emits Figure 7 points as CSV (dataset, k, auc, f1).
func WriteKSweepCSV(w io.Writer, points []KSweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "k", "auc", "f1"}); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, p := range points {
		rec := []string{
			p.Dataset,
			strconv.Itoa(p.K),
			strconv.FormatFloat(p.AUC, 'f', 6, 64),
			strconv.FormatFloat(p.F1, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv flush: %w", err)
	}
	return nil
}

// WriteTable3JSON emits Table III cells as a JSON array.
func WriteTable3JSON(w io.Writer, cells []Table3Cell) error {
	type record struct {
		Dataset string  `json:"dataset"`
		Method  string  `json:"method"`
		AUC     float64 `json:"auc"`
		F1      float64 `json:"f1"`
	}
	out := make([]record, len(cells))
	for i, c := range cells {
		out[i] = record{Dataset: c.Dataset, Method: c.Method, AUC: c.AUC, F1: c.F1}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("experiments: json encode: %w", err)
	}
	return nil
}

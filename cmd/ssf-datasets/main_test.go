package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssflp/internal/graph"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	var out strings.Builder
	for {
		n, _ := r.Read(buf)
		if n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	return out.String(), runErr
}

func TestRunDatasets(t *testing.T) {
	dir := t.TempDir()
	out, err := captureStdout(t, func() error {
		return run([]string{"-out", dir, "-scale", "40", "-datasets", "Digg", "-histogram"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Digg") || !strings.Contains(out, "t=") {
		t.Errorf("output malformed:\n%s", out)
	}
	res, err := graph.LoadEdgeListFile(filepath.Join(dir, "digg.txt"))
	if err != nil {
		t.Fatalf("written file unreadable: %v", err)
	}
	if res.Graph.NumEdges() == 0 {
		t.Error("written graph is empty")
	}
}

func TestRunDatasetsErrors(t *testing.T) {
	if err := run([]string{"-datasets", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Co author X"); got != "co-author-x" {
		t.Errorf("sanitize = %q", got)
	}
}

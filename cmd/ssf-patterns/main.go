// Command ssf-patterns regenerates Figure 6: the most frequent K-structure
// subgraph patterns of sampled links, rendered as ASCII adjacency grids.
//
//	ssf-patterns -datasets Facebook,Co-author -k 10 -samples 2000 -scale 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ssflp/internal/datagen"
	"ssflp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssf-patterns:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssf-patterns", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 10, "structure subgraph size K")
		samples  = fs.Int("samples", 2000, "random links to sample per dataset (paper: 2000)")
		scale    = fs.Int("scale", 8, "dataset scale divisor (1 = paper scale)")
		seed     = fs.Int64("seed", 1, "random seed")
		top      = fs.Int("top", 3, "how many most-frequent patterns to print")
		dotDir   = fs.String("dot", "", "also write the top pattern per dataset as Graphviz DOT into this directory")
		datasets = fs.String("datasets", datagen.Facebook+","+datagen.Coauthor,
			"comma-separated datasets (Figure 6 uses Facebook and Co-author)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cfg, err := datagen.ByName(name, *seed)
		if err != nil {
			return err
		}
		cfg = datagen.Scale(cfg, *scale)
		g, err := datagen.Generate(cfg)
		if err != nil {
			return err
		}
		patterns, err := experiments.MinePatterns(g, experiments.PatternOptions{
			K: *k, SampleLinks: *samples, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("=== %s: %d distinct patterns over sampled links (K=%d)\n",
			name, len(patterns), *k)
		for i, p := range patterns {
			if i >= *top {
				break
			}
			fmt.Print(experiments.FormatPattern(p))
			fmt.Println()
		}
		if *dotDir != "" && len(patterns) > 0 {
			if err := os.MkdirAll(*dotDir, 0o755); err != nil {
				return fmt.Errorf("create dot dir: %w", err)
			}
			path := filepath.Join(*dotDir, strings.ToLower(name)+".dot")
			dot := experiments.FormatPatternDOT(patterns[0], name)
			if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
				return fmt.Errorf("write dot: %w", err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return nil
}

package subgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssflp/internal/graph"
)

func TestFirstPrimes(t *testing.T) {
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	got := firstPrimes(10)
	if len(got) != 10 {
		t.Fatalf("firstPrimes(10) returned %d primes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("P(%d) = %d, want %d", i+1, got[i], want[i])
		}
	}
	if firstPrimes(0) != nil {
		t.Error("firstPrimes(0) should be nil")
	}
	// Larger request exercises the bound-doubling path.
	big := firstPrimes(1000)
	if big[999] != 7919 {
		t.Errorf("P(1000) = %d, want 7919", big[999])
	}
}

func TestPaletteWLValidation(t *testing.T) {
	if _, err := PaletteWL([][]int{{}}, []int32{0}); err == nil {
		t.Error("PaletteWL with 1 node should fail")
	}
	if _, err := PaletteWL([][]int{{}, {}}, []int32{0}); err == nil {
		t.Error("PaletteWL with mismatched dist length should fail")
	}
}

func TestPaletteWLEndpointsPinned(t *testing.T) {
	// Star around node 0 plus endpoint 1.
	nbrs := [][]int{{2, 3, 4}, {4}, {0}, {0}, {0, 1}}
	dist := []int32{0, 0, 1, 1, 1}
	order, err := PaletteWL(nbrs, dist)
	if err != nil {
		t.Fatalf("PaletteWL: %v", err)
	}
	if order[0] != 1 || order[1] != 2 {
		t.Errorf("endpoint orders = %d, %d, want 1, 2", order[0], order[1])
	}
}

func TestPaletteWLIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		nbrs, dist := randomOrderInput(seed, 12)
		order, err := PaletteWL(nbrs, dist)
		if err != nil {
			return false
		}
		seen := make([]bool, len(order)+1)
		for _, o := range order {
			if o < 1 || o > len(order) || seen[o] {
				return false
			}
			seen[o] = true
		}
		return order[0] == 1 && order[1] == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPaletteWLRespectsDistance(t *testing.T) {
	// The paper requires farther structure nodes to receive higher orders.
	f := func(seed int64) bool {
		nbrs, dist := randomOrderInput(seed, 14)
		order, err := PaletteWL(nbrs, dist)
		if err != nil {
			return false
		}
		for i := 2; i < len(order); i++ {
			for j := 2; j < len(order); j++ {
				if dist[i] < dist[j] && order[i] > order[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPaletteWLDifferentiatesByStructure(t *testing.T) {
	// Two distance-1 nodes: one adjacent to both endpoints, one to a single
	// endpoint. They start with the same color (same distance) but the
	// prime-log hash must split them. With the default PreferConnected tie
	// preference the doubly-connected node (the common neighbor) wins the
	// lower order; with the paper-literal PreferSparse it loses it.
	nbrs := [][]int{
		{2, 3}, // endpoint A
		{2},    // endpoint B
		{0, 1}, // both endpoints
		{0},    // only A
	}
	dist := []int32{0, 0, 1, 1}
	order, err := PaletteWL(nbrs, dist)
	if err != nil {
		t.Fatalf("PaletteWL: %v", err)
	}
	if order[2] != 3 || order[3] != 4 {
		t.Errorf("PreferConnected orders = %v, want common neighbor -> 3, leaf -> 4", order)
	}
	sparse, err := PaletteWLTie(nbrs, dist, PreferSparse)
	if err != nil {
		t.Fatalf("PaletteWLTie: %v", err)
	}
	if sparse[2] != 4 || sparse[3] != 3 {
		t.Errorf("PreferSparse orders = %v, want leaf -> 3, common neighbor -> 4", sparse)
	}
	if _, err := PaletteWLTie(nbrs, dist, TiePreference(9)); err == nil {
		t.Error("unknown tie preference should fail")
	}
}

func TestPaletteWLDeterministic(t *testing.T) {
	nbrs, dist := randomOrderInput(42, 20)
	a, err := PaletteWL(nbrs, dist)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaletteWL(nbrs, dist)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(a, b) {
		t.Errorf("PaletteWL not deterministic: %v vs %v", a, b)
	}
}

// randomOrderInput builds a random connected-ish adjacency + distance input
// with nodes 0 and 1 as endpoints.
func randomOrderInput(seed int64, n int) ([][]int, []int32) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	g.EnsureNodes(n)
	// Chain to guarantee connectivity, then random extras.
	for i := 0; i < n-1; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
		}
	}
	view := g.Static()
	nbrs := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, w := range view.Neighbors(graph.NodeID(u)) {
			nbrs[u] = append(nbrs[u], int(w))
		}
	}
	dist := g.DistancesToLink(0, 1)
	return nbrs, dist
}

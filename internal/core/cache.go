package core

import (
	"container/list"
	"sync"

	"ssflp/internal/graph"
)

// CachingExtractor memoizes SSF vectors per (unordered) node pair with an
// LRU eviction policy. Cached vectors are valid as long as the underlying
// history graph is unchanged; owners that mutate the graph (live ingestion)
// must call Purge afterwards. Serving workloads (the ssf-serve /top
// endpoint, repeated ScoreBatch calls) hit the same pairs repeatedly and
// skip the O(K³ + K|V_h|²) extraction.
//
// Concurrent misses on the same pair are deduplicated singleflight-style:
// the first caller computes, later callers block on the in-flight result
// instead of burning an extraction each. Safe for concurrent use.
type CachingExtractor struct {
	inner *Extractor

	mu       sync.Mutex
	capacity int
	entries  map[pairKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[pairKey]*inflightCall
	gen      uint64 // bumped by Purge; guards stale in-flight inserts
	hits     int64
	misses   int64
	shared   int64
}

type pairKey struct{ u, v graph.NodeID }

type cacheEntry struct {
	key pairKey
	vec []float64
}

// inflightCall is one in-progress extraction that concurrent requests for
// the same pair wait on. vec/err are immutable once done is closed.
type inflightCall struct {
	done chan struct{}
	vec  []float64
	err  error
}

// DefaultCacheSize bounds the memoized pair count when no capacity is given.
const DefaultCacheSize = 4096

// NewCachingExtractor wraps an extractor with an LRU cache of the given
// capacity (0 selects DefaultCacheSize).
func NewCachingExtractor(inner *Extractor, capacity int) *CachingExtractor {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &CachingExtractor{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[pairKey]*list.Element, capacity),
		order:    list.New(),
		inflight: make(map[pairKey]*inflightCall),
	}
}

// Extract returns the SSF vector of (a, b), from cache when available. The
// returned slice is shared across callers and must not be mutated.
func (c *CachingExtractor) Extract(a, b graph.NodeID) ([]float64, error) {
	key := pairKey{u: min(a, b), v: max(a, b)}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		vec := el.Value.(*cacheEntry).vec
		c.mu.Unlock()
		return vec, nil
	}
	c.misses++
	if call, ok := c.inflight[key]; ok {
		// Another goroutine is already extracting this pair; share its
		// result instead of computing again.
		c.shared++
		c.mu.Unlock()
		<-call.done
		return call.vec, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	gen := c.gen
	c.mu.Unlock()

	// Extraction runs outside the lock so unrelated pairs proceed in
	// parallel; followers of this pair block on call.done above.
	vec, err := c.inner.Extract(a, b)

	c.mu.Lock()
	call.vec, call.err = vec, err
	if c.inflight[key] == call {
		delete(c.inflight, key)
	}
	// Only insert if no Purge ran while we were extracting: a vector
	// computed against the pre-mutation graph must not outlive it.
	if err == nil && gen == c.gen {
		el := c.order.PushFront(&cacheEntry{key: key, vec: vec})
		c.entries[key] = el
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	close(call.done)
	return vec, err
}

// Purge drops every cached vector and detaches in-flight extractions, for
// use after the underlying graph is mutated (live ingestion). Extractions
// already in progress still return to their waiters — the score they
// produce reflects the pre-mutation graph, which is the same answer those
// callers would have gotten moments earlier — but their results are not
// inserted into the post-purge cache. Hit/miss statistics survive.
func (c *CachingExtractor) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.entries = make(map[pairKey]*list.Element, c.capacity)
	c.order.Init()
	// Detach rather than wait: new requests for these pairs must recompute
	// against the mutated graph instead of joining a stale in-flight call.
	c.inflight = make(map[pairKey]*inflightCall)
}

// Stats reports cache hits, misses and the current entry count.
func (c *CachingExtractor) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// Capacity reports the cache's maximum entry count.
func (c *CachingExtractor) Capacity() int { return c.capacity }

// SharedInflight reports how many extractions were avoided by joining an
// in-flight computation of the same pair.
func (c *CachingExtractor) SharedInflight() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shared
}

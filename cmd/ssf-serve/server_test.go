package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ssflp"
	"ssflp/internal/graph"
)

// testServer trains a CN predictor on a small synthetic network.
func testServer(t *testing.T) *server {
	t.Helper()
	return testServerWith(t, limitsConfig{})
}

// testServerWith is testServer with explicit resilience limits (zero fields
// take the production defaults).
func testServerWith(t *testing.T, limits limitsConfig) *server {
	t.Helper()
	g, err := ssflp.GenerateDataset("Slashdot", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssflp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(serverConfig{
		File: path, Method: "CN", MaxPositives: 20, Seed: 1, Limits: limits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func getJSON(t *testing.T, h http.Handler, url string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("non-JSON response %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body
}

// TestLookupNumericAliasGuard pins the raw-id fallback rule: on a graph
// with numeric labels, a numeric token that is not a label must NOT resolve
// to the node that happens to hold that id (interning order decouples label
// values from ids), while graphs with purely non-numeric labels keep raw-id
// addressing.
func TestLookupNumericAliasGuard(t *testing.T) {
	b := graph.NewBuilder()
	// Interning order: "19" -> id 0, "3" -> id 1, "7" -> id 2.
	b.AddEdge("19", "3", 1)
	b.AddEdge("7", "3", 2)
	st := &epochState{snap: b.Snapshot(1)}
	if id, ok := st.lookup("19"); !ok || id != 0 {
		t.Fatalf(`lookup("19") = %d, %v; want label hit on id 0`, id, ok)
	}
	// "0", "1", "2" are valid ids but not labels; resolving them would alias
	// onto nodes labeled "19"/"3"/"7".
	for _, tok := range []string{"0", "1", "2"} {
		if id, ok := st.lookup(tok); ok {
			t.Errorf("lookup(%q) = %d, want miss (numeric labels disable raw ids)", tok, id)
		}
	}

	nb := graph.NewBuilder()
	nb.AddEdge("alpha", "beta", 1)
	nst := &epochState{snap: nb.Snapshot(1)}
	if id, ok := nst.lookup("1"); !ok || id != 1 {
		t.Fatalf(`lookup("1") on non-numeric labels = %d, %v; want raw id 1`, id, ok)
	}
	if _, ok := nst.lookup("5"); ok {
		t.Error(`lookup("5") resolved past the node count`)
	}
}

func TestHealthEndpoint(t *testing.T) {
	h := testServer(t).routes()
	code, body := getJSON(t, h, "/health")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" || body["method"] != "CN" {
		t.Errorf("body = %v", body)
	}
	if body["nodes"].(float64) <= 0 {
		t.Error("nodes missing")
	}
}

func TestScoreEndpoint(t *testing.T) {
	h := testServer(t).routes()
	code, body := getJSON(t, h, "/score?u=0&v=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	if _, ok := body["score"].(float64); !ok {
		t.Errorf("score missing: %v", body)
	}
	if _, ok := body["predicted"].(bool); !ok {
		t.Errorf("predicted missing: %v", body)
	}
}

func TestScoreEndpointErrors(t *testing.T) {
	h := testServer(t).routes()
	if code, _ := getJSON(t, h, "/score?u=0"); code != http.StatusBadRequest {
		t.Errorf("missing v status = %d", code)
	}
	if code, _ := getJSON(t, h, "/score?u=0&v=notanode"); code != http.StatusNotFound {
		t.Errorf("unknown node status = %d", code)
	}
}

func TestTopEndpoint(t *testing.T) {
	h := testServer(t).routes()
	code, body := getJSON(t, h, "/top?n=5")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	cands, ok := body["candidates"].([]any)
	if !ok || len(cands) == 0 || len(cands) > 5 {
		t.Errorf("candidates = %v", body["candidates"])
	}
	first := cands[0].(map[string]any)
	if _, ok := first["score"].(float64); !ok {
		t.Errorf("candidate malformed: %v", first)
	}
	if code, _ := getJSON(t, h, "/top?n=0"); code != http.StatusBadRequest {
		t.Errorf("n=0 status = %d", code)
	}
	if code, _ := getJSON(t, h, "/top?n=9999"); code != http.StatusBadRequest {
		t.Errorf("n too large status = %d", code)
	}
}

func TestNewServerFromSnapshot(t *testing.T) {
	g, err := ssflp.GenerateDataset("Slashdot", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.txt")
	f, err := os.Create(netPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssflp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pred, err := ssflp.Train(g, ssflp.SSFLR, ssflp.TrainOptions{K: 6, MaxPositives: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	srv, err := newServer(serverConfig{File: netPath, Model: modelPath})
	if err != nil {
		t.Fatal(err)
	}
	code, body := getJSON(t, srv.routes(), "/health")
	if code != http.StatusOK || body["method"] != "SSFLR" {
		t.Errorf("snapshot server health = %d %v", code, body)
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, err := newServer(serverConfig{File: "/does/not/exist", Method: "CN"}); err == nil {
		t.Error("missing file should fail")
	}
	g, err := ssflp.GenerateDataset("Slashdot", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssflp.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := newServer(serverConfig{File: path, Method: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown method error = %v", err)
	}
	if _, err := newServer(serverConfig{File: path, Model: "/missing/model.json"}); err == nil {
		t.Error("missing model should fail")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{}); err == nil {
		t.Error("missing -file should fail")
	}
}

func postJSON(t *testing.T, h http.Handler, url, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("non-JSON response %q: %v", rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestBatchEndpoint(t *testing.T) {
	h := testServer(t).routes()
	code, body := postJSON(t, h, "/batch", `[{"u":"0","v":"1"},{"u":"2","v":"3"}]`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %v", code, body)
	}
	results, ok := body["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v", body["results"])
	}
	first := results[0].(map[string]any)
	if first["u"] != "0" {
		t.Errorf("result order not preserved: %v", first)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	h := testServer(t).routes()
	if code, _ := postJSON(t, h, "/batch", `{bad json`); code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", code)
	}
	if code, _ := postJSON(t, h, "/batch", `[]`); code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", code)
	}
	if code, _ := postJSON(t, h, "/batch", `[{"u":"0","v":"zzz"}]`); code != http.StatusNotFound {
		t.Errorf("unknown node status = %d", code)
	}
}

// TestReplPollWait pins the poll budget below the leader-silence readiness
// budget: an idle replica's contact age peaks at roughly one poll cycle, so
// a poll at or above the budget would flap /readyz on every quiet cycle.
func TestReplPollWait(t *testing.T) {
	cases := []struct {
		lagAge, want time.Duration
	}{
		{0, 20 * time.Second},               // budget disabled: default polling
		{15 * time.Second, 5 * time.Second}, // default budget: a third
		{300 * time.Millisecond, 100 * time.Millisecond},
		{90 * time.Millisecond, 100 * time.Millisecond}, // floor
		{10 * time.Minute, 20 * time.Second},            // ceiling
	}
	for _, c := range cases {
		if got := replPollWait(c.lagAge); got != c.want {
			t.Errorf("replPollWait(%v) = %v, want %v", c.lagAge, got, c.want)
		}
		if c.lagAge > 0 {
			if got := replPollWait(c.lagAge); got >= c.lagAge && c.lagAge >= 300*time.Millisecond {
				t.Errorf("replPollWait(%v) = %v, not inside the silence budget", c.lagAge, got)
			}
		}
	}
}

package resilience

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssflp/internal/telemetry"
)

func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := telemetry.Lint(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("exposition failed lint:\n%s\nerror: %v", sb.String(), err)
	}
	return sb.String()
}

func TestInstrumentationCountsAndTimes(t *testing.T) {
	reg := telemetry.NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	in := NewInstrumentation(reg, logger)

	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := Chain(ok, in.Middleware("/score"))
	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/score", nil))
		if rr.Header().Get("X-Request-Id") == "" {
			t.Fatal("response missing X-Request-Id header")
		}
	}
	out := scrape(t, reg)
	if !strings.Contains(out, `ssf_http_requests_total{endpoint="/score",code="200"} 3`) {
		t.Errorf("request counter wrong:\n%s", out)
	}
	if !strings.Contains(out, `ssf_http_request_duration_seconds_count{endpoint="/score"} 3`) {
		t.Errorf("duration histogram wrong:\n%s", out)
	}
	if !strings.Contains(out, "ssf_http_inflight_requests 0") {
		t.Errorf("inflight gauge should return to zero:\n%s", out)
	}
	if !strings.Contains(logBuf.String(), `"endpoint":"/score"`) ||
		!strings.Contains(logBuf.String(), `"request_id"`) {
		t.Errorf("structured log line missing fields: %s", logBuf.String())
	}
}

func TestInstrumentationClassifiesShedAndTimeout(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewInstrumentation(reg, nil)

	shed := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		errorJSON(w, http.StatusTooManyRequests, "overloaded")
	})
	Chain(shed, in.Middleware("/score")).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/score", nil))

	slow := http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	Chain(slow, in.Middleware("/top"), Deadline(5*time.Millisecond)).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/top", nil))

	out := scrape(t, reg)
	if !strings.Contains(out, `ssf_http_sheds_total{endpoint="/score"} 1`) {
		t.Errorf("shed not counted:\n%s", out)
	}
	if !strings.Contains(out, `ssf_http_timeouts_total{endpoint="/top"} 1`) {
		t.Errorf("timeout not counted:\n%s", out)
	}
	if !strings.Contains(out, `ssf_http_requests_total{endpoint="/top",code="504"} 1`) {
		t.Errorf("504 not counted:\n%s", out)
	}
}

func TestRecoverWithCountsPanics(t *testing.T) {
	reg := telemetry.NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	in := NewInstrumentation(reg, logger)

	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	h := Chain(boom, in.Middleware("/batch"),
		RecoverWith(logger, func() { in.CountPanic("/batch") }))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/batch", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	out := scrape(t, reg)
	if !strings.Contains(out, `ssf_http_panics_total{endpoint="/batch"} 1`) {
		t.Errorf("panic not counted:\n%s", out)
	}
	if !strings.Contains(out, `ssf_http_requests_total{endpoint="/batch",code="500"} 1`) {
		t.Errorf("500 not counted:\n%s", out)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "handler panic") || !strings.Contains(logs, "kaboom") {
		t.Errorf("panic not logged: %s", logs)
	}
	// The request-scoped ID assigned by the middleware must appear in the
	// panic log line via the context.
	if !strings.Contains(logs, `"request_id":"`+rr.Header().Get("X-Request-Id")+`"`) {
		t.Errorf("panic log missing request id %q: %s", rr.Header().Get("X-Request-Id"), logs)
	}
}

func TestRecoverWithReRaisesAbortHandler(t *testing.T) {
	h := Chain(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), RecoverWith(nil, nil))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("http.ErrAbortHandler must be re-raised")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestRequestIDPropagation(t *testing.T) {
	in := NewInstrumentation(telemetry.NewRegistry(), nil)
	var seen string
	h := Chain(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}), in.Middleware("/x"))

	// A sane caller-supplied ID is honored.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", "trace-abc-123")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if seen != "trace-abc-123" || rr.Header().Get("X-Request-Id") != "trace-abc-123" {
		t.Fatalf("caller ID not honored: ctx=%q header=%q", seen, rr.Header().Get("X-Request-Id"))
	}

	// A hostile one is replaced.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", "evil\"\nid")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if strings.ContainsAny(seen, "\"\n") || seen == "" {
		t.Fatalf("hostile ID not sanitized: %q", seen)
	}

	// Absent header gets a generated 16-hex-char ID.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if len(seen) != 16 {
		t.Fatalf("generated ID = %q, want 16 hex chars", seen)
	}

	// No middleware: empty ID, no panic.
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
}

func TestNilInstrumentation(t *testing.T) {
	var in *Instrumentation
	in.CountPanic("/x")
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), in.Middleware("/x"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("nil instrumentation must pass through, got %d", rr.Code)
	}
}

package main

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"ssflp/internal/wal"
)

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	var out strings.Builder
	for {
		n, _ := r.Read(buf)
		if n == 0 {
			break
		}
		out.Write(buf[:n])
	}
	return out.String(), runErr
}

func TestRunRolling(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-dataset", "Slashdot", "-scale", "40", "-cuts", "2",
			"-methods", "CN", "-maxpos", "10", "-epochs", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rolling evaluation", "cut t<=", "means over cuts", "CN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRollingErrors(t *testing.T) {
	if err := run([]string{"-dataset", "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{"-dataset", "Slashdot", "-scale", "40", "-methods", "nope"}); err == nil {
		t.Error("unknown method should fail")
	}
}

// TestRunRollingFromWAL evaluates a write-ahead log directory directly: the
// logged edge stream (not a synthetic dataset) becomes the dynamic network.
func TestRunRollingFromWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var evs []wal.Event
	for i := 0; i < 400; i++ {
		u := rng.Intn(30)
		v := rng.Intn(30)
		if u == v {
			v = (v + 1) % 30
		}
		evs = append(evs, wal.Event{
			U: "n" + strconv.Itoa(u), V: "n" + strconv.Itoa(v), Ts: int64(i / 20),
		})
	}
	if _, err := l.AppendBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error {
		return run([]string{"-wal", dir, "-cuts", "2", "-methods", "CN", "-maxpos", "10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rolling evaluation", "wal " + dir, "cut t<=", "means over cuts", "CN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRollingWALErrors: empty or missing WAL directories fail loudly.
func TestRunRollingWALErrors(t *testing.T) {
	if err := run([]string{"-wal", t.TempDir(), "-methods", "CN"}); err == nil {
		t.Error("empty wal should fail")
	}
}

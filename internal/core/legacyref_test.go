package core

// This file carries a frozen copy of the pre-optimization SSF pipeline —
// full-graph BFS extraction, map-based structure combination and Palette-WL
// color tables, per-call allocation throughout — and proves that the pooled
// scratch implementation produces byte-identical feature vectors across
// hundreds of random target pairs on generated datasets. Floating-point
// summation order is part of the contract (Influence adds member-link decay
// terms in Stamps order), so the comparison is exact (==), not approximate.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ssflp/internal/datagen"
	"ssflp/internal/graph"
	"ssflp/internal/subgraph"
)

// --- frozen legacy pipeline (reference implementation) ---

type refSubgraph struct {
	Orig []graph.NodeID
	Dist []int32
	G    *graph.Graph
	H    int
}

type refStructureNode struct {
	Members []int
	Dist    int32
}

type refStructureLink struct {
	X, Y   int
	Stamps []graph.Timestamp
}

type refStructureGraph struct {
	Nodes []refStructureNode
	Links []refStructureLink
	adj   [][]int
}

type refKStructure struct {
	K, N  int
	Nodes []refStructureNode
	Links []refStructureLink
	H     int
}

func refExtract(g *graph.Graph, a, b graph.NodeID, h int) (*refSubgraph, error) {
	if a == b {
		return nil, fmt.Errorf("ref: same endpoints %d", a)
	}
	n := g.NumNodes()
	if a < 0 || b < 0 || int(a) >= n || int(b) >= n {
		return nil, fmt.Errorf("ref: endpoint missing (%d, %d)", a, b)
	}
	dist := g.DistancesToLink(a, b)
	sg := &refSubgraph{H: h, G: graph.New(16)}
	local := make([]int32, n)
	for i := range local {
		local[i] = -1
	}
	add := func(u graph.NodeID) {
		local[u] = int32(len(sg.Orig))
		sg.Orig = append(sg.Orig, u)
		sg.Dist = append(sg.Dist, dist[u])
	}
	add(a)
	add(b)
	for u := 0; u < n; u++ {
		id := graph.NodeID(u)
		if id == a || id == b {
			continue
		}
		if d := dist[u]; d != graph.Unreachable && int(d) <= h {
			add(id)
		}
	}
	sg.G.EnsureNodes(len(sg.Orig))
	for li, u := range sg.Orig {
		for arc := range g.Arcs(u) {
			lj := local[arc.To]
			if lj <= int32(li) {
				continue
			}
			if err := sg.G.AddEdge(graph.NodeID(li), graph.NodeID(lj), arc.Ts); err != nil {
				return nil, err
			}
		}
	}
	return sg, nil
}

func refCombine(s *refSubgraph) *refStructureGraph {
	n := len(s.Orig)
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i
	}
	numClasses := n
	baseNbrs := make([][]int, n)
	var buf []int
	for u := 0; u < n; u++ {
		buf = buf[:0]
		for arc := range s.G.Arcs(graph.NodeID(u)) {
			buf = append(buf, int(arc.To))
		}
		baseNbrs[u] = refSortDedup(buf, nil)
	}
	for {
		merged, next, nextCount := refMergeRound(baseNbrs, classOf, numClasses)
		if !merged {
			break
		}
		classOf, numClasses = next, nextCount
	}
	return refAssemble(s, classOf, numClasses)
}

func refSortDedup(in []int, dst []int) []int {
	sort.Ints(in)
	if dst == nil {
		dst = make([]int, 0, len(in))
	}
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

func refMergeRound(baseNbrs [][]int, classOf []int, numClasses int) (bool, []int, int) {
	classNbrs := make([][]int, numClasses)
	for u, nbrs := range baseNbrs {
		cu := classOf[u]
		for _, v := range nbrs {
			if cv := classOf[v]; cv != cu {
				classNbrs[cu] = append(classNbrs[cu], cv)
			}
		}
	}
	for c := range classNbrs {
		classNbrs[c] = refSortDedup(classNbrs[c], classNbrs[c][:0])
	}
	endpointA, endpointB := classOf[0], classOf[1]
	groups := make(map[string]int, numClasses)
	newID := make([]int, numClasses)
	for i := range newID {
		newID[i] = -1
	}
	newID[endpointA] = 0
	newID[endpointB] = 1
	nextCount := 2
	merged := false
	var key []byte
	for c := 0; c < numClasses; c++ {
		if c == endpointA || c == endpointB {
			continue
		}
		key = key[:0]
		for _, v := range classNbrs[c] {
			key = binary.AppendUvarint(key, uint64(v))
		}
		if id, ok := groups[string(key)]; ok {
			newID[c] = id
			merged = true
			continue
		}
		groups[string(key)] = nextCount
		newID[c] = nextCount
		nextCount++
	}
	next := make([]int, len(classOf))
	for u, c := range classOf {
		next[u] = newID[c]
	}
	return merged, next, nextCount
}

func refAssemble(s *refSubgraph, classOf []int, numClasses int) *refStructureGraph {
	sg := &refStructureGraph{
		Nodes: make([]refStructureNode, numClasses),
		adj:   make([][]int, numClasses),
	}
	for i := range sg.Nodes {
		sg.Nodes[i].Dist = graph.Unreachable
	}
	for u, c := range classOf {
		node := &sg.Nodes[c]
		node.Members = append(node.Members, u)
		if d := s.Dist[u]; node.Dist == graph.Unreachable || (d != graph.Unreachable && d < node.Dist) {
			node.Dist = d
		}
	}
	type pair struct{ x, y int }
	linkIdx := make(map[pair]int)
	for e := range s.G.Edges() {
		cx, cy := classOf[e.U], classOf[e.V]
		if cx == cy {
			continue
		}
		if cx > cy {
			cx, cy = cy, cx
		}
		p := pair{cx, cy}
		li, ok := linkIdx[p]
		if !ok {
			li = len(sg.Links)
			linkIdx[p] = li
			sg.Links = append(sg.Links, refStructureLink{X: cx, Y: cy})
			sg.adj[cx] = append(sg.adj[cx], li)
			sg.adj[cy] = append(sg.adj[cy], li)
		}
		sg.Links[li].Stamps = append(sg.Links[li].Stamps, e.Ts)
	}
	return sg
}

func (s *refStructureGraph) neighborSets() [][]int {
	out := make([][]int, len(s.Nodes))
	for i, linkIdx := range s.adj {
		nb := make([]int, 0, len(linkIdx))
		for _, li := range linkIdx {
			l := s.Links[li]
			other := l.X
			if other == i {
				other = l.Y
			}
			nb = append(nb, other)
		}
		sort.Ints(nb)
		out[i] = nb
	}
	return out
}

func refLogPrimes(n int) []float64 {
	if n <= 0 {
		return nil
	}
	limit := 15
	if n >= 6 {
		f := float64(n)
		limit = int(f*(math.Log(f)+math.Log(math.Log(f)))) + 10
	}
	var primes []int
	for {
		primes = primes[:0]
		composite := make([]bool, limit+1)
		for p := 2; p <= limit; p++ {
			if composite[p] {
				continue
			}
			primes = append(primes, p)
			for q := p * p; q <= limit; q += p {
				composite[q] = true
			}
		}
		if len(primes) >= n {
			break
		}
		limit *= 2
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Log(float64(primes[i]))
	}
	return out
}

func refPaletteWL(nbrs [][]int, dist []int32, preferSparse bool) ([]int, error) {
	n := len(nbrs)
	if n < 2 {
		return nil, fmt.Errorf("ref: too few nodes: %d", n)
	}
	sign := -1.0
	if preferSparse {
		sign = 1
	}
	colors := refInitialColors(dist)
	logs := refLogPrimes(n)
	hash := make([]float64, n)
	next := make([]int, n)
	maxDeg := 0
	for _, nb := range nbrs {
		maxDeg = max(maxDeg, len(nb))
	}
	cs := make([]int, maxDeg)
	for iter := 0; iter < n+2; iter++ {
		var denom float64
		for _, c := range colors {
			denom += logs[c-1]
		}
		if denom == 0 {
			denom = 1
		}
		for x := range nbrs {
			cs = cs[:len(nbrs[x])]
			for i, p := range nbrs[x] {
				cs[i] = colors[p]
			}
			sort.Ints(cs)
			var frac float64
			for _, c := range cs {
				frac += logs[c-1]
			}
			hash[x] = float64(colors[x]) + sign*frac/denom
		}
		refDenseRank(hash, next)
		if refEqualInts(next, colors) {
			break
		}
		copy(colors, next)
	}
	return refTotalOrder(colors), nil
}

func refInitialColors(dist []int32) []int {
	n := len(dist)
	colors := make([]int, n)
	colors[0], colors[1] = 1, 2
	distinct := make(map[int64]struct{})
	for i := 2; i < n; i++ {
		distinct[refDistKey(dist[i])] = struct{}{}
	}
	keys := make([]int64, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	colorOf := make(map[int64]int, len(keys))
	for i, k := range keys {
		colorOf[k] = 3 + i
	}
	for i := 2; i < n; i++ {
		colors[i] = colorOf[refDistKey(dist[i])]
	}
	return colors
}

func refDistKey(d int32) int64 {
	if d < 0 {
		return math.MaxInt64
	}
	return int64(d)
}

func refDenseRank(hash []float64, out []int) {
	n := len(hash)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return hash[idx[a]] < hash[idx[b]] })
	rank := 0
	for pos, i := range idx {
		if pos == 0 || hash[i] != hash[idx[pos-1]] {
			rank++
		}
		out[i] = rank
	}
}

func refTotalOrder(colors []int) []int {
	n := len(colors)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if colors[idx[a]] != colors[idx[b]] {
			return colors[idx[a]] < colors[idx[b]]
		}
		return idx[a] < idx[b]
	})
	order := make([]int, n)
	for pos, i := range idx {
		order[i] = pos + 1
	}
	return order
}

func refEqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func refBuildK(g *graph.Graph, a, b graph.NodeID, k int, preferSparse bool) (*refKStructure, error) {
	var (
		sg        *refSubgraph
		st        *refStructureGraph
		prevNodes = -1
	)
	h := 1
	for {
		var err error
		sg, err = refExtract(g, a, b, h)
		if err != nil {
			return nil, err
		}
		st = refCombine(sg)
		if len(st.Nodes) >= k {
			break
		}
		if len(sg.Orig) == prevNodes {
			break
		}
		prevNodes = len(sg.Orig)
		h++
	}
	dists := make([]int32, len(st.Nodes))
	for i, n := range st.Nodes {
		dists[i] = n.Dist
	}
	order, err := refPaletteWL(st.neighborSets(), dists, preferSparse)
	if err != nil {
		return nil, err
	}
	n := min(len(st.Nodes), k)
	ks := &refKStructure{K: k, N: n, Nodes: make([]refStructureNode, n), H: h}
	for i, node := range st.Nodes {
		if o := order[i]; o <= n {
			ks.Nodes[o-1] = node
		}
	}
	for _, l := range st.Links {
		ox, oy := order[l.X], order[l.Y]
		if ox > n || oy > n {
			continue
		}
		if ox > oy {
			ox, oy = oy, ox
		}
		ks.Links = append(ks.Links, refStructureLink{X: ox - 1, Y: oy - 1, Stamps: l.Stamps})
	}
	return ks, nil
}

// refExtractVec reruns the whole legacy Algorithm 3 for one target pair
// under the extractor's (default-filled) options.
func refExtractVec(e *Extractor, a, b graph.NodeID) ([]float64, error) {
	opts := e.Options()
	ks, err := refBuildK(e.g, a, b, opts.K, opts.Tie == subgraph.PreferSparse)
	if err != nil {
		return nil, err
	}
	adj := make([][]float64, opts.K)
	for i := range adj {
		adj[i] = make([]float64, opts.K)
	}
	switch opts.Mode {
	case EntryInfluence:
		for _, l := range ks.Links {
			v := Influence(l.Stamps, e.present, opts.Theta)
			adj[l.X][l.Y] = v
			adj[l.Y][l.X] = v
		}
	case EntryCount:
		for _, l := range ks.Links {
			v := float64(len(l.Stamps))
			adj[l.X][l.Y] = v
			adj[l.Y][l.X] = v
		}
	case EntryInverseDistance:
		refFillInverseDistance(e, adj, ks)
	}
	adj[0][1], adj[1][0] = 0, 0
	return Unfold(adj, opts.K), nil
}

func refFillInverseDistance(e *Extractor, adj [][]float64, ks *refKStructure) {
	n := ks.N
	if n == 0 {
		return
	}
	const maxLen = 1e18
	type refWedge struct {
		to     int
		length float64
	}
	nbrs := make([][]refWedge, n)
	for _, l := range ks.Links {
		infl := Influence(l.Stamps, e.present, e.opts.Theta)
		length := maxLen
		if infl > 0 {
			length = math.Min(1/infl, maxLen)
		}
		nbrs[l.X] = append(nbrs[l.X], refWedge{to: l.Y, length: length})
		nbrs[l.Y] = append(nbrs[l.Y], refWedge{to: l.X, length: length})
	}
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	if n > 1 {
		dist[1] = 0
	}
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, w := range nbrs[u] {
			if d := best + w.length; d < dist[w.to] {
				dist[w.to] = d
			}
		}
	}
	for _, l := range ks.Links {
		d := math.Min(dist[l.X], dist[l.Y])
		v := 1 / (1 + d)
		adj[l.X][l.Y] = v
		adj[l.Y][l.X] = v
	}
}

// --- the property tests ---

func legacyRefGraph(t testing.TB, name string, divisor int, seed int64) *graph.Graph {
	t.Helper()
	cfg, err := datagen.ByName(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := datagen.Generate(datagen.Scale(cfg, divisor))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestExtractMatchesLegacyReference proves the pooled-scratch pipeline is a
// pure perf change: across >= 500 random target pairs on two generated
// datasets, Extract returns vectors byte-identical to the frozen legacy
// implementation, under every entry mode.
func TestExtractMatchesLegacyReference(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	datasets := []struct {
		name    string
		divisor int
	}{
		{datagen.EuEmail, 16},
		{datagen.Contact, 16},
	}
	modes := []EntryMode{EntryInverseDistance, EntryInfluence, EntryCount}
	const pairsPerMode = 100 // 2 datasets x 3 modes x 100 = 600 pairs
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			g := legacyRefGraph(t, ds.name, ds.divisor, 7)
			present := g.MaxTimestamp() + 1
			for _, mode := range modes {
				t.Run(mode.String(), func(t *testing.T) {
					ex, err := NewExtractor(g, present, Options{K: 10, Mode: mode})
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(mode) * 1001))
					n := g.NumNodes()
					for p := 0; p < pairsPerMode; p++ {
						a := graph.NodeID(rng.Intn(n))
						b := graph.NodeID(rng.Intn(n - 1))
						if b >= a {
							b++
						}
						got, err := ex.Extract(a, b)
						if err != nil {
							t.Fatal(err)
						}
						want, err := refExtractVec(ex, a, b)
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("pair (%d,%d): len %d vs %d", a, b, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("pair (%d,%d) mode %s entry %d: got %v, legacy %v",
									a, b, mode, i, got[i], want[i])
							}
						}
					}
				})
			}
		})
	}
}

// TestPooledExtractorConcurrentMatchesSequential hammers one pooled
// extractor from 16 goroutines (run under -race in CI) and checks every
// result against sequentially precomputed vectors.
func TestPooledExtractorConcurrentMatchesSequential(t *testing.T) {
	g := legacyRefGraph(t, datagen.EuEmail, 32, 3)
	ex, err := NewExtractor(g, g.MaxTimestamp()+1, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	const pairs = 24
	type target struct{ a, b graph.NodeID }
	targets := make([]target, pairs)
	want := make([][]float64, pairs)
	rng := rand.New(rand.NewSource(11))
	for i := range targets {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n - 1))
		if b >= a {
			b++
		}
		targets[i] = target{a, b}
		v, err := ex.Extract(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (w + rep) % pairs
				got, err := ex.Extract(targets[i].a, targets[i].b)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want[i] {
					if got[j] != want[i][j] {
						t.Errorf("worker %d pair %d entry %d: %v vs %v", w, i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

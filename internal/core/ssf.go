// Package core implements the paper's primary contribution: the Structure
// Subgraph Feature (Section V). Given a history graph and a target link it
// builds the K-structure subgraph (Definition 7), normalizes the influence
// of every structure link with the exponential decay of Eq. 2/3, assembles
// the K×K adjacency matrix of the normalized K-structure subgraph (Eq. 4,
// plus the experimental inverse-distance relaxation of Section V-B and the
// static-count SSF-W variant) and unfolds its upper triangle into the SSF
// vector (Eq. 5, Algorithm 3).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ssflp/internal/graph"
	"ssflp/internal/subgraph"
)

// EntryMode selects how the adjacency entries A(m, n) of the normalized
// K-structure subgraph are computed.
type EntryMode int

const (
	// EntryInfluence uses the normalized influence of Definition 8 directly:
	// A(m, n) = Σ exp(-θ(l_t − l_k)) over the member links.
	EntryInfluence EntryMode = iota + 1

	// EntryInverseDistance is the experimental relaxation of Section V-B:
	// A(m, n) = 1 / (1 + min(d(N_x, e_t), d(N_y, e_t))) where d is the
	// weighted shortest-path distance to the closer endpoint of the target
	// link, computed with edge lengths 1/l̃ (reciprocal influences). The
	// paper's formula 1/min(d_x, d_y) is undefined for links incident to
	// the endpoints (d = 0), so this implementation shifts the denominator
	// by one — a monotone rescaling documented in DESIGN.md.
	EntryInverseDistance

	// EntryCount is the SSF-W static variant of Section VI-C-1: A(m, n) is
	// the plain number of links between the two structure nodes, ignoring
	// timestamps.
	EntryCount
)

// String implements fmt.Stringer.
func (m EntryMode) String() string {
	switch m {
	case EntryInfluence:
		return "influence"
	case EntryInverseDistance:
		return "inverse-distance"
	case EntryCount:
		return "count"
	default:
		return fmt.Sprintf("EntryMode(%d)", int(m))
	}
}

// Default hyper-parameters from the paper's experiments (Section VI).
const (
	DefaultK     = 10
	DefaultTheta = 0.5
)

var (
	// ErrBadTheta is returned for decay factors outside (0, 1].
	ErrBadTheta = errors.New("core: theta must be in (0, 1]")

	// ErrBadMode is returned for an unknown entry mode.
	ErrBadMode = errors.New("core: unknown entry mode")

	// ErrNilGraph is returned when the extractor is given no history graph.
	ErrNilGraph = errors.New("core: nil history graph")
)

// Options configures SSF extraction.
type Options struct {
	// K is the number of structure nodes encoded (Definition 7). The
	// resulting feature has FeatureLen(K) entries. Default 10.
	K int
	// Theta is the exponential decay factor θ of Eq. 2. Default 0.5.
	Theta float64
	// Mode selects the adjacency entry definition. Default
	// EntryInverseDistance (what the paper's experiments use).
	Mode EntryMode
	// Tie selects the Palette-WL tie preference governing which structure
	// nodes survive K-selection. Default subgraph.PreferConnected; the
	// paper-literal subgraph.PreferSparse is available for ablation.
	Tie subgraph.TiePreference
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = DefaultK
	}
	if o.Theta == 0 {
		o.Theta = DefaultTheta
	}
	if o.Mode == 0 {
		o.Mode = EntryInverseDistance
	}
	if o.Tie == 0 {
		o.Tie = subgraph.PreferConnected
	}
	return o
}

// FeatureLen returns the SSF vector length for a given K: the upper
// triangle of the K×K adjacency minus the target-link cell A(1, 2),
// i.e. K(K−1)/2 − 1.
func FeatureLen(k int) int { return k*(k-1)/2 - 1 }

// Influence computes the normalized influence l̃ of Definition 8 for a set
// of member-link timestamps observed from present time.
func Influence(stamps []graph.Timestamp, present graph.Timestamp, theta float64) float64 {
	var s float64
	for _, ts := range stamps {
		s += graph.DecayedWeight(present, ts, theta)
	}
	return s
}

// Extractor computes SSF vectors for target links against a fixed history
// graph and present time l_t. It is safe for concurrent use once built:
// every pipeline buffer lives in a per-goroutine scratch drawn from an
// internal sync.Pool, so concurrent Extract calls never contend and a
// steady-state extraction performs a single allocation (the returned
// vector). Extractor must not be copied after first use.
type Extractor struct {
	g       *graph.Graph
	present graph.Timestamp
	opts    Options
	pool    sync.Pool // *scratch
	fpool   sync.Pool // *subgraph.SourceFrontier, reused across batches
	metrics *Metrics  // nil disables stage timing; set before first Extract
}

// scratch bundles the subgraph pipeline scratch with the K×K adjacency and
// inverse-distance buffers of the core stage. stages lives here so timed
// extraction stays allocation-free.
type scratch struct {
	sub        subgraph.Scratch
	adjBacking []float64   // contiguous K×K storage
	adj        [][]float64 // rows into adjBacking
	nbrs       [][]wedge
	dist       []float64
	done       []bool
	stages     subgraph.StageTimes
	assemble   time.Duration // last assembleAdj wall time (with metrics on)
}

// newScratch builds a scratch for a fixed K.
func newScratch(k int) *scratch {
	sc := &scratch{
		adjBacking: make([]float64, k*k),
		adj:        make([][]float64, k),
	}
	for i := range sc.adj {
		sc.adj[i] = sc.adjBacking[i*k : (i+1)*k]
	}
	return sc
}

// NewExtractor validates the options and returns an extractor over the
// history graph g with present time (the timestamp l_t of the links being
// predicted).
func NewExtractor(g *graph.Graph, present graph.Timestamp, opts Options) (*Extractor, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	opts = opts.withDefaults()
	if opts.K < 3 {
		return nil, fmt.Errorf("%w: got %d", subgraph.ErrBadK, opts.K)
	}
	if opts.Theta <= 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("%w: got %g", ErrBadTheta, opts.Theta)
	}
	switch opts.Mode {
	case EntryInfluence, EntryInverseDistance, EntryCount:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadMode, int(opts.Mode))
	}
	switch opts.Tie {
	case subgraph.PreferConnected, subgraph.PreferSparse:
	default:
		return nil, fmt.Errorf("core: unknown tie preference %d", int(opts.Tie))
	}
	e := &Extractor{g: g, present: present, opts: opts}
	k := opts.K
	e.pool.New = func() any { return newScratch(k) }
	return e, nil
}

// Options returns the effective (default-filled) options.
func (e *Extractor) Options() Options { return e.opts }

// SetMetrics attaches telemetry to the extractor. Call it during wiring,
// before the first Extract — the field is read without synchronization on
// the hot path. A nil Metrics (the default) keeps extraction untimed.
func (e *Extractor) SetMetrics(m *Metrics) { e.metrics = m }

// Extract returns the SSF vector V(e_t) of the target link (a, b)
// following Algorithm 3. The whole pipeline runs inside a pooled scratch;
// the returned vector is the only steady-state allocation.
func (e *Extractor) Extract(a, b graph.NodeID) ([]float64, error) {
	sc := e.pool.Get().(*scratch)
	adj, _, err := e.matrixInto(sc, a, b)
	if err != nil {
		e.pool.Put(sc)
		return nil, err
	}
	vec := Unfold(adj, e.opts.K)
	e.pool.Put(sc)
	return vec, nil
}

// Matrix returns the K×K adjacency matrix A of the normalized K-structure
// subgraph (Eq. 4 / Section V-B) along with the underlying K-structure
// subgraph, mainly for inspection and tests. Row/column i corresponds to the
// structure node with Palette-WL order i+1; A is symmetric with a zero
// diagonal and A[0][1] = 0 (the unknown target link). The result is backed
// by a private scratch, so the caller owns it.
func (e *Extractor) Matrix(a, b graph.NodeID) ([][]float64, *subgraph.KStructure, error) {
	return e.matrixInto(newScratch(e.opts.K), a, b)
}

// matrixInto computes the adjacency matrix into the scratch's buffers. The
// returned matrix and K-structure alias sc. With metrics attached, the
// subgraph stages accumulate into the scratch's StageTimes and the adjacency
// assembly is timed here; without, the untimed PR 3 path runs unchanged.
func (e *Extractor) matrixInto(sc *scratch, a, b graph.NodeID) ([][]float64, *subgraph.KStructure, error) {
	var tm *subgraph.StageTimes
	if e.metrics != nil {
		tm = &sc.stages
		tm.Reset()
	}
	ks, err := sc.sub.BuildKTieTimedInto(e.g, subgraph.TargetLink{A: a, B: b}, e.opts.K, e.opts.Tie, tm)
	if err != nil {
		e.metrics.countError()
		return nil, nil, err
	}
	adj, err := e.assembleAdj(sc, ks, tm)
	if err != nil {
		return nil, nil, err
	}
	return adj, ks, nil
}

// assembleAdj fills the scratch's K×K adjacency from a built K-structure —
// the mode switch of Eq. 4 / Section V-B / SSF-W. Shared by the per-pair and
// shared-frontier paths so both assemble byte-identical matrices.
func (e *Extractor) assembleAdj(sc *scratch, ks *subgraph.KStructure, tm *subgraph.StageTimes) ([][]float64, error) {
	var assembleStart time.Time
	if e.metrics != nil {
		assembleStart = time.Now()
	}
	for i := range sc.adjBacking {
		sc.adjBacking[i] = 0
	}
	adj := sc.adj
	switch e.opts.Mode {
	case EntryInfluence:
		for _, l := range ks.Links {
			v := Influence(l.Stamps, e.present, e.opts.Theta)
			adj[l.X][l.Y] = v
			adj[l.Y][l.X] = v
		}
	case EntryCount:
		for _, l := range ks.Links {
			v := float64(l.Count())
			adj[l.X][l.Y] = v
			adj[l.Y][l.X] = v
		}
	case EntryInverseDistance:
		e.fillInverseDistance(sc, adj, ks)
	}
	adj[0][1], adj[1][0] = 0, 0
	if e.metrics != nil {
		sc.assemble = time.Since(assembleStart)
		e.metrics.observe(tm, sc.assemble)
	}
	return adj, nil
}

// fillInverseDistance implements the Section V-B relaxation: structure-link
// entries become 1/(1 + min(d(N_x, e_t), d(N_y, e_t))) with d the weighted
// shortest-path distance (edge length = reciprocal normalized influence) to
// the closer target endpoint.
func (e *Extractor) fillInverseDistance(sc *scratch, adj [][]float64, ks *subgraph.KStructure) {
	n := ks.N
	if n == 0 {
		return
	}
	// Edge lengths between slots: 1 / l̃, capped to avoid Inf when the
	// influence underflowed to zero.
	const maxLen = 1e18
	nbrs := resetWedges(sc.nbrs, n)
	for _, l := range ks.Links {
		infl := Influence(l.Stamps, e.present, e.opts.Theta)
		length := maxLen
		if infl > 0 {
			length = math.Min(1/infl, maxLen)
		}
		nbrs[l.X] = append(nbrs[l.X], wedge{to: l.Y, length: length})
		nbrs[l.Y] = append(nbrs[l.Y], wedge{to: l.X, length: length})
	}
	sc.nbrs = nbrs
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.done = make([]bool, n)
	}
	dist, done := sc.dist[:n], sc.done[:n]
	multiSourceDijkstra(nbrs, n, dist, done)
	for _, l := range ks.Links {
		d := math.Min(dist[l.X], dist[l.Y])
		v := 1 / (1 + d)
		adj[l.X][l.Y] = v
		adj[l.Y][l.X] = v
	}
}

// resetWedges resizes a ragged [][]wedge to n rows with every row truncated
// to zero length, keeping row capacities for reuse.
func resetWedges(s [][]wedge, n int) [][]wedge {
	s = s[:cap(s)]
	for len(s) < n {
		s = append(s, nil)
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// wedge is one weighted adjacency entry among K-structure slots.
type wedge struct {
	to     int
	length float64
}

// multiSourceDijkstra fills dist with the weighted distance from
// {slot 0, slot 1} (the target endpoints) to every slot, using done as its
// settled set. O(n²) — n is at most K.
func multiSourceDijkstra(nbrs [][]wedge, n int, dist []float64, done []bool) {
	for i := 0; i < n; i++ {
		dist[i] = math.Inf(1)
		done[i] = false
	}
	dist[0] = 0
	if n > 1 {
		dist[1] = 0
	}
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range nbrs[u] {
			if d := best + e.length; d < dist[e.to] {
				dist[e.to] = d
			}
		}
	}
}

// Unfold flattens the upper-right triangle of the K×K adjacency matrix by
// column, skipping the target cell A(1, 2) — Eq. 5. Matrices narrower than
// K are implicitly zero padded.
func Unfold(adj [][]float64, k int) []float64 {
	out := make([]float64, 0, FeatureLen(k))
	for n := 2; n < k; n++ { // 0-based column index; columns 3..K in the paper
		for m := 0; m < n; m++ {
			out = append(out, at(adj, m, n))
		}
	}
	return out
}

func at(adj [][]float64, i, j int) float64 {
	if i < len(adj) && j < len(adj[i]) {
		return adj[i][j]
	}
	return 0
}

package subgraph

import (
	"testing"
	"testing/quick"

	"ssflp/internal/graph"
)

func TestExpandPreservesEdgeAndStampMultiset(t *testing.T) {
	f := func(seed int64) bool {
		g := randomTestGraph(seed, 22, 50)
		sg, err := Extract(g, TargetLink{A: 0, B: 1}, 2)
		if err != nil {
			return false
		}
		st := Combine(sg)
		rec, err := Expand(st, sg.NumNodes())
		if err != nil {
			t.Logf("seed %d: expand: %v", seed, err)
			return false
		}
		if rec.NumEdges() != sg.G.NumEdges() {
			t.Logf("seed %d: edges %d vs %d", seed, rec.NumEdges(), sg.G.NumEdges())
			return false
		}
		a, b := StampMultiset(rec), StampMultiset(sg.G)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpandRecombinesToSamePartition(t *testing.T) {
	// Combining the expanded graph must recover the identical partition —
	// the fixed-point sense in which the representations are equivalent.
	f := func(seed int64) bool {
		g := randomTestGraph(seed, 20, 45)
		sg, err := Extract(g, TargetLink{A: 0, B: 1}, 2)
		if err != nil {
			return false
		}
		st := Combine(sg)
		part, err := st.PartitionOf(sg.NumNodes())
		if err != nil {
			return false
		}
		rec, err := Expand(st, sg.NumNodes())
		if err != nil {
			return false
		}
		// Re-extract an "h-hop subgraph" view of the reconstruction: the
		// reconstruction is already local, so wrap it directly.
		sg2 := &Subgraph{
			Orig: sg.Orig,
			Dist: sg.Dist,
			G:    rec,
			H:    sg.H,
		}
		st2 := Combine(sg2)
		part2, err := st2.PartitionOf(sg.NumNodes())
		if err != nil {
			return false
		}
		// Partitions must be identical up to renumbering: same blocks.
		remap := map[int]int{}
		for i := range part {
			if want, ok := remap[part[i]]; ok {
				if part2[i] != want {
					return false
				}
				continue
			}
			remap[part[i]] = part2[i]
		}
		// Injectivity: distinct blocks must not merge.
		seen := map[int]bool{}
		for _, v := range remap {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfValidation(t *testing.T) {
	st := &StructureGraph{Nodes: []StructureNode{{Members: []int{0, 2}}, {Members: []int{1}}}}
	part, err := st.PartitionOf(3)
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != 0 || part[1] != 1 || part[2] != 0 {
		t.Errorf("partition = %v", part)
	}
	if _, err := st.PartitionOf(2); err == nil {
		t.Error("member out of range should fail")
	}
	dup := &StructureGraph{Nodes: []StructureNode{{Members: []int{0}}, {Members: []int{0}}}}
	if _, err := dup.PartitionOf(1); err == nil {
		t.Error("duplicate membership should fail")
	}
	gap := &StructureGraph{Nodes: []StructureNode{{Members: []int{0}}}}
	if _, err := gap.PartitionOf(2); err == nil {
		t.Error("uncovered node should fail")
	}
}

func TestExpandEmptyStructureLinkMember(t *testing.T) {
	st := &StructureGraph{
		Nodes: []StructureNode{{Members: []int{0}}, {}},
		Links: []StructureLink{{X: 0, Y: 1, Stamps: []graph.Timestamp{1}}},
	}
	if _, err := Expand(st, 2); err == nil {
		t.Error("empty structure node should fail")
	}
}

package main

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssflp/internal/trace"
)

// traceDump mirrors the /debug/traces envelope for test decoding.
type traceDump struct {
	Count  int `json:"count"`
	Traces []struct {
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Error   bool   `json:"error"`
		Spans   []struct {
			Name     string         `json:"name"`
			ParentID string         `json:"parent_id"`
			Error    bool           `json:"error"`
			Attrs    map[string]any `json:"attrs"`
		} `json:"spans"`
	} `json:"traces"`
}

func getTraces(t *testing.T, h http.Handler, url string) traceDump {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
	}
	var out traceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

// TestTraceCaptureIngestCommit drives a traced, WAL-backed /ingest and
// asserts the captured trace carries the whole commit pipeline: root span,
// group commit, WAL append + fsync, epoch swap.
func TestTraceCaptureIngestCommit(t *testing.T) {
	srv, err := newServer(serverConfig{
		File: writeTestNet(t), Method: "CN", MaxPositives: 20, Seed: 1,
		WALDir: t.TempDir(),
		Trace:  trace.Config{SampleRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.close() })
	h := srv.routes()

	req := httptest.NewRequest(http.MethodPost, "/ingest",
		strings.NewReader(`{"u":"tr-a","v":"tr-b","ts":99}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	traceID := rec.Header().Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("traced request without X-Trace-Id response header")
	}

	dump := getTraces(t, h, "/debug/traces?trace_id="+traceID)
	if dump.Count != 1 {
		t.Fatalf("trace %s not captured (count=%d)", traceID, dump.Count)
	}
	tr := dump.Traces[0]
	if tr.Root != "/ingest" || tr.Error {
		t.Fatalf("trace = %+v", tr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"/ingest", "ingest.commit", "wal.append", "wal.fsync", "epoch.swap"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// The exposition with the ssf_trace_* families and exemplar comment lines
	// must still pass the telemetry linter (scrapeMetrics lints), count the
	// capture, and stamp the latency bucket with this trace's ID.
	out := scrapeMetrics(t, h)
	for _, want := range []string{
		`ssf_trace_captured_total{reason="sampled"} 1`,
		// The scrape itself is a traced request, so assert the family rather
		// than an exact count.
		"ssf_trace_traces_total ",
		"# exemplar ssf_http_request_duration_seconds_bucket",
		"trace_id=" + traceID,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceCaptureShardedFault is the acceptance gate in-process: a /top
// against a topology with one always-erroring shard must capture an
// error-tagged trace whose span tree crosses router → shard, with the failed
// attempt's shard and breaker attrs on the shard span.
func TestTraceCaptureShardedFault(t *testing.T) {
	cfg := serverConfig{
		File: writeTestNet(t), Method: "CN", MaxPositives: 20, Seed: 1,
		Trace: trace.Config{SampleRate: 1},
	}
	rs, servers, err := buildLocalSharded(2, cfg, shardedOptions{
		Timeout: 2 * time.Second, Retries: -1, HedgeAfter: -1,
		BreakerWindow: 20, BreakerCooldown: 5 * time.Second,
		FaultSpec: "1:err=1.0", Seed: 1,
	}, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.close()
		}
	})
	h := rs.routes()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/top?n=5", nil))
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("faulted /top = %d, want 206: %s", rec.Code, rec.Body.String())
	}

	dump := getTraces(t, h, "/debug/traces?error=true&endpoint=/top")
	if dump.Count < 1 {
		t.Fatal("no error-tagged /top trace captured")
	}
	tr := dump.Traces[0]
	sawRoot, sawFailed, sawOK := false, false, false
	for _, sp := range tr.Spans {
		if sp.Name == "/top" && sp.ParentID == "" {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("trace has no /top root span")
	}
	for _, sp := range tr.Spans {
		if sp.Name != "shard.top" {
			continue
		}
		if sp.ParentID == "" {
			t.Error("shard span not parented into the router trace")
		}
		if _, ok := sp.Attrs["breaker"]; !ok {
			t.Errorf("shard span missing breaker attr: %v", sp.Attrs)
		}
		if sp.Error && sp.Attrs["shard"] == float64(1) {
			sawFailed = true
		}
		if !sp.Error && sp.Attrs["shard"] == float64(0) {
			sawOK = true
		}
	}
	if !sawFailed || !sawOK {
		t.Errorf("span tree does not show the fan-out (failed=%v ok=%v): %+v",
			sawFailed, sawOK, tr.Spans)
	}
}

// TestUntracedServerStaysDark pins the zero-cost default: without a Trace
// config the route exists but serves an empty ring and no X-Trace-Id is set.
func TestUntracedServerStaysDark(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/score?u=0&v=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("score = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "" {
		t.Errorf("untraced server set X-Trace-Id %q", got)
	}
	if dump := getTraces(t, h, "/debug/traces"); dump.Count != 0 {
		t.Errorf("untraced server captured %d traces", dump.Count)
	}
}

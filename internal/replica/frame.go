// Package replica ships the write-ahead log from a leader to read replicas.
//
// The leader side serves two HTTP endpoints over its durable log: a
// long-polling record stream (GET /repl/stream, framed WAL records from a
// requested LSN) and a snapshot bootstrap (GET /repl/snapshot, the newest
// checksummed snapshot file verbatim). The follower side pulls the stream
// with jittered retry/backoff, validates every frame's CRC and the LSN
// contiguity of the whole stream, and hands validated event batches to the
// serving layer, which applies them through the same epoch-snapshot publish
// path local ingest uses. A follower that falls behind the leader's retention
// (the leader compacted the records it needs) re-bootstraps from the snapshot
// endpoint and tails from there.
//
// Replication is asynchronous: the leader acknowledges writes from its own
// fsync, never waiting on followers, so a replica serves a slightly stale but
// internally consistent epoch. Lag — durable LSN at the leader minus applied
// LSN at the follower — is continuously measured and exported; the serving
// layer gates readiness on it.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ssflp/internal/wal"
)

// frameMagic opens every stream frame. A fixed first byte makes framing
// damage (an offset slip, a foreign payload) fail fast instead of being
// misread as a length.
const frameMagic = 0x52 // 'R'

// maxFrameHeader bounds the bytes before the embedded WAL record: the magic
// byte plus a maximal uvarint LSN.
const maxFrameHeader = 1 + binary.MaxVarintLen64

// ErrFrame marks a stream frame that is structurally invalid: bad magic, a
// zero LSN, or an embedded record that fails its own framing or checksum.
var ErrFrame = errors.New("replica: invalid stream frame")

// ErrFrameShort marks a buffer that ends mid-frame — for a streaming reader
// this just means "read more bytes", not damage.
var ErrFrameShort = errors.New("replica: short stream frame")

// AppendStreamFrame appends the framed encoding of (lsn, ev) to dst. Layout:
//
//	byte    0x52 magic
//	uvarint LSN
//	bytes   one WAL record (uint32 length, uint32 CRC32C, payload)
//
// The embedded record carries its own checksum, so a frame is verifiable
// end-to-end without re-hashing on the leader.
func AppendStreamFrame(dst []byte, lsn wal.LSN, ev wal.Event) []byte {
	dst = append(dst, frameMagic)
	dst = binary.AppendUvarint(dst, uint64(lsn))
	return wal.AppendRecord(dst, ev)
}

// DecodeStreamFrame decodes the first frame in b, returning its LSN, event
// and total encoded size. A buffer ending mid-frame returns ErrFrameShort;
// any structural damage returns an error wrapping ErrFrame. DecodeStreamFrame
// never panics, whatever the input.
func DecodeStreamFrame(b []byte) (wal.LSN, wal.Event, int, error) {
	if len(b) == 0 {
		return 0, wal.Event{}, 0, fmt.Errorf("%w: empty buffer", ErrFrameShort)
	}
	if b[0] != frameMagic {
		return 0, wal.Event{}, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrFrame, b[0])
	}
	lsn, n := binary.Uvarint(b[1:])
	if n == 0 {
		return 0, wal.Event{}, 0, fmt.Errorf("%w: truncated LSN varint", ErrFrameShort)
	}
	if n < 0 || lsn == 0 {
		return 0, wal.Event{}, 0, fmt.Errorf("%w: bad LSN varint", ErrFrame)
	}
	off := 1 + n
	ev, rn, err := wal.DecodeRecord(b[off:])
	switch {
	case errors.Is(err, wal.ErrShort):
		return 0, wal.Event{}, 0, fmt.Errorf("%w: %v", ErrFrameShort, err)
	case err != nil:
		return 0, wal.Event{}, 0, fmt.Errorf("%w: %v", ErrFrame, err)
	}
	return wal.LSN(lsn), ev, off + rn, nil
}

// DecodeStream decodes a complete stream body: consecutive frames starting at
// LSN from, each exactly one greater than its predecessor. It returns the
// decoded events (the i-th has LSN from+i). Contiguity violations, framing
// damage and trailing garbage all fail — a replication stream is applied
// all-or-nothing.
func DecodeStream(b []byte, from wal.LSN) ([]wal.Event, error) {
	var events []wal.Event
	want := from
	for len(b) > 0 {
		lsn, ev, n, err := DecodeStreamFrame(b)
		if err != nil {
			return nil, err
		}
		if lsn != want {
			return nil, fmt.Errorf("%w: LSN %d, want %d (stream not contiguous)", ErrFrame, lsn, want)
		}
		events = append(events, ev)
		want++
		b = b[n:]
	}
	return events, nil
}

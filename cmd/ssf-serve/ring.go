package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// epochRing retains the last R published epochs so `as_of` requests can be
// answered from history. Each retained epochState is immutable (a frozen
// graph snapshot plus its predictor binding), so serving an old epoch is the
// same lock-free read path as serving the current one — the windowed
// builder's copy-on-expiry rebuild guarantees later expiry never mutates a
// retained snapshot's arc rows. Readers load one immutable slice pointer;
// writers (epoch publication, already single-writer per role) append under
// a mutex and publish a fresh slice.
type epochRing struct {
	capacity int
	mu       sync.Mutex
	states   atomic.Pointer[[]*epochState]
}

// newEpochRing returns a ring retaining up to capacity epochs, or nil when
// capacity <= 0 (time travel disabled; only the current epoch answers).
func newEpochRing(capacity int) *epochRing {
	if capacity <= 0 {
		return nil
	}
	r := &epochRing{capacity: capacity}
	empty := make([]*epochState, 0, capacity)
	r.states.Store(&empty)
	return r
}

// add retains st as the newest epoch, evicting the oldest beyond capacity.
// Always copy-on-write: readers may hold the previous slice.
func (r *epochRing) add(st *epochState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.states.Load()
	start := 0
	if len(old)+1 > r.capacity {
		start = len(old) + 1 - r.capacity
	}
	next := make([]*epochState, 0, r.capacity)
	next = append(next, old[start:]...)
	next = append(next, st)
	r.states.Store(&next)
}

// list returns the retained epochs, oldest first. The slice is immutable.
func (r *epochRing) list() []*epochState {
	return *r.states.Load()
}

// stateAt resolves an as_of timestamp to the newest retained epoch whose
// graph does not extend past it (max edge timestamp <= asOf). The second
// return is false when asOf predates everything retained — the 410 Gone
// case. Without a ring only the current epoch is available.
func (s *server) stateAt(asOf int64) (*epochState, bool) {
	if s.ring == nil {
		st := s.state()
		if int64(st.snap.Graph.MaxTimestamp()) <= asOf {
			return st, true
		}
		return nil, false
	}
	list := s.ring.list()
	for i := len(list) - 1; i >= 0; i-- {
		if int64(list[i].snap.Graph.MaxTimestamp()) <= asOf {
			return list[i], true
		}
	}
	return nil, false
}

// asOfState parses an optional as_of query parameter and resolves the epoch
// to serve. Returns (state, asOfEcho, ok); on a parse error or a ring miss
// the response has already been written (400, or 410 Gone with the miss
// counted). asOfEcho is nil when the request carried no as_of.
func (s *server) asOfState(w http.ResponseWriter, r *http.Request) (*epochState, *int64, bool) {
	raw := r.URL.Query().Get("as_of")
	if raw == "" {
		return s.state(), nil, true
	}
	asOf, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "as_of must be an integer timestamp")
		return nil, nil, false
	}
	st, ok := s.stateAt(asOf)
	if !ok {
		s.ringMisses.Inc()
		errorJSON(w, http.StatusGone, "as_of predates the retained epoch ring")
		return nil, nil, false
	}
	s.ringHits.Inc()
	s.epochReads.Inc()
	return st, &asOf, true
}

// captureWindow stamps an about-to-publish epoch with the builder's window
// observability fields. Call only on the goroutine that owns s.b.
func (s *server) captureWindow(st *epochState) *epochState {
	if s.b != nil {
		st.expiredEdges = s.b.ExpiredEdges()
		st.windowStart, st.windowActive = s.b.WindowStart()
	}
	return st
}

// noteWindowExpiry folds the windowed builder's cumulative expiry counter
// into telemetry and reports how many edges expired since the last call.
// Runs on the single writer goroutine that owns the builder (ingest commit
// leader or replica follower loop).
func (s *server) noteWindowExpiry() uint64 {
	if s.b == nil {
		return 0
	}
	cur := s.b.ExpiredEdges()
	delta := cur - s.lastExpired
	if delta > 0 {
		s.lastExpired = cur
		s.windowExpired.Add(delta)
	}
	return delta
}

// maybeCompactWindow kicks off an asynchronous window compaction after a
// commit expired buckets: the durable state shrinks to match the served
// window. At most one compaction runs at a time; a publish that fires while
// one is in flight is simply picked up by the next expiry.
func (s *server) maybeCompactWindow() {
	if s.wlog == nil || !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		if err := s.compactWindow(); err != nil {
			s.slogger().Error("window compaction failed", slog.Any("error", err))
		}
	}()
}

// compactWindow persists the current (windowed) epoch as a snapshot and
// truncates every WAL segment it covers. Since the snapshot holds only
// in-window edges plus the full label dictionary, the records dropped from
// the log are exactly the history below the window — a replica bootstrapping
// from /repl/snapshot afterwards inherits the windowed view, and a follower
// stranded below the truncated tail gets the 410 that triggers its clean
// re-bootstrap.
func (s *server) compactWindow() error {
	before := s.currentSnapLSN()
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	if s.currentSnapLSN() != before {
		s.walCompactions.Inc()
	}
	return nil
}

// currentSnapLSN reads the newest persisted snapshot position.
func (s *server) currentSnapLSN() uint64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return uint64(s.lastSnapLSN)
}

package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At(0,1) = %v, want 7", m.At(0, 1))
	}
	r := m.Row(0)
	if len(r) != 3 || r[1] != 7 {
		t.Errorf("Row(0) = %v", r)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone is not deep")
	}
}

func TestMulMat(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Dense{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	got, err := MulMat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if got.Data[i] != w {
			t.Errorf("MulMat[%d] = %v, want %v", i, got.Data[i], w)
		}
	}
	if _, err := MulMat(a, NewDense(3, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("mismatch error = %v", err)
	}
}

func TestMulMatTAndMulTMat(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 0, 1, 0, 1, 0}}
	abt, err := MulMatT(a, b) // 2x2
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 2, 10, 5}
	for i, w := range want {
		if abt.Data[i] != w {
			t.Errorf("MulMatT[%d] = %v, want %v", i, abt.Data[i], w)
		}
	}
	atb, err := MulTMat(a, b) // 3x3
	if err != nil {
		t.Fatal(err)
	}
	// aᵀb[0][0] = 1*1 + 4*0 = 1
	if atb.At(0, 0) != 1 || atb.Rows != 3 || atb.Cols != 3 {
		t.Errorf("MulTMat = %+v", atb)
	}
	if _, err := MulMatT(a, NewDense(2, 4)); err == nil {
		t.Error("MulMatT shape mismatch should fail")
	}
	if _, err := MulTMat(a, NewDense(3, 3)); err == nil {
		t.Error("MulTMat shape mismatch should fail")
	}
}

func TestMulVec(t *testing.T) {
	m := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	got, err := MulVec(m, []float64{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", got)
	}
	if _, err := MulVec(m, []float64{1}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("MulVec shape mismatch should fail")
	}
	if _, err := MulVec(m, []float64{1, 1, 1}, make([]float64, 5)); err == nil {
		t.Error("MulVec bad out length should fail")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %v, want 5", Norm2(x))
	}
	y := []float64{1, 1}
	AXPY(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
}

func TestCholeskySolveKnownSystem(t *testing.T) {
	// A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5].
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{4, 2, 2, 3}}
	x, err := CholeskySolve(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1.75, 1e-12) || !almostEq(x[1], 1.5, 1e-12) {
		t.Errorf("x = %v, want [1.75 1.5]", x)
	}
}

func TestCholeskySolveRejectsIndefinite(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{0, 1, 1, 0}}
	if _, err := CholeskySolve(a, []float64{1, 1}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("error = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := CholeskySolve(NewDense(2, 3), []float64{1, 1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square error = %v", err)
	}
}

func TestPropertyCholeskySolvesRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		// Random B, A = BᵀB + I is SPD.
		b := NewDense(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a, err := MulTMat(b, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := CholeskySolve(a, rhs)
		if err != nil {
			return false
		}
		ax, err := MulVec(a, x, nil)
		if err != nil {
			return false
		}
		for i := range rhs {
			if !almostEq(ax[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRAssemblyAndMulVec(t *testing.T) {
	m, err := NewCSR(3, []Triplet{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 1}, {2, 1, 1}, {0, 1, 3}, // duplicate (0,1) sums to 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4 (duplicate merged)", m.NNZ())
	}
	if m.RowSum(0) != 5 {
		t.Errorf("RowSum(0) = %v, want 5", m.RowSum(0))
	}
	got, err := m.MulVec([]float64{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, []Triplet{{0, 5, 1}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("out-of-range entry error = %v", err)
	}
	m, err := NewCSR(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MulVec([]float64{1}, nil); err == nil {
		t.Error("MulVec wrong length should fail")
	}
	if _, err := m.MulVecTransition([]float64{1, 2, 3}, nil); err == nil {
		t.Error("MulVecTransition wrong length should fail")
	}
}

func TestCSRTransitionConservesProbability(t *testing.T) {
	// On a graph with no dangling nodes, Mᵀ preserves total mass.
	m, err := NewCSR(3, []Triplet{
		{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 0, 0}
	for step := 0; step < 5; step++ {
		next, err := m.MulVecTransition(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		var mass float64
		for _, v := range next {
			mass += v
		}
		if !almostEq(mass, 1, 1e-12) {
			t.Fatalf("step %d mass = %v, want 1", step, mass)
		}
		p = next
	}
}

func TestCSRTransitionDanglingNodeAbsorbs(t *testing.T) {
	// Node 1 has no outgoing entries: mass entering it disappears.
	m, err := NewCSR(2, []Triplet{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.MulVecTransition([]float64{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 || p[1] != 0 {
		t.Errorf("dangling transition = %v, want zeros", p)
	}
}

func TestPropertyCSRMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		dense := NewDense(n, n)
		var trips []Triplet
		for k := 0; k < n*2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.Float64()
			dense.Add(i, j, v)
			trips = append(trips, Triplet{Row: int32(i), Col: int32(j), Val: v})
		}
		sp, err := NewCSR(n, trips)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a, err := sp.MulVec(x, nil)
		if err != nil {
			return false
		}
		b, err := MulVec(dense, x, nil)
		if err != nil {
			return false
		}
		for i := range a {
			if !almostEq(a[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Quickstart: build a small dynamic network by hand, train the SSFNM
// predictor, and score candidate future links.
package main

import (
	"fmt"
	"log"
	"sort"

	"ssflp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A dynamic network is a multigraph with timestamped links. Here we use
	// a synthetic reply network shipped with the library; building one by
	// hand works the same way via g.AddEdge(u, v, timestamp).
	g, err := ssflp.GenerateDataset("Slashdot", 8, 1)
	if err != nil {
		return err
	}
	stats := g.Statistics()
	fmt.Printf("network: %d nodes, %d timestamped links, span %d\n",
		stats.NumNodes, stats.NumEdges, stats.TimeSpan)

	// Train SSFNM: links at the last timestamp become positive examples,
	// features come from the history before it.
	pred, err := ssflp.Train(g, ssflp.SSFNM, ssflp.TrainOptions{
		K:            10,  // structure subgraph size (paper default)
		Epochs:       150, // the paper trains 2000 epochs; 150 is plenty here
		Seed:         42,
		MaxPositives: 200,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained %s\n\n", pred.Method())

	// Score a basket of candidate pairs and rank them. Higher scores mean
	// the model thinks the link is more likely to emerge next; the absolute
	// value is a softmax probability and tends to saturate, so the ranking
	// is the meaningful signal.
	pairs := [][2]ssflp.NodeID{{0, 1}, {0, 7}, {3, 50}, {100, 200}, {250, 300}, {42, 333}}
	type scored struct {
		u, v  ssflp.NodeID
		score float64
	}
	ranked := make([]scored, 0, len(pairs))
	for _, p := range pairs {
		score, err := pred.Score(p[0], p[1])
		if err != nil {
			return err
		}
		ranked = append(ranked, scored{u: p[0], v: p[1], score: score})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	fmt.Println("candidate links, most likely first:")
	for i, r := range ranked {
		fmt.Printf("  %d. link %3d - %-3d score %.4f\n", i+1, r.u, r.v, r.score)
	}

	// Raw SSF vectors are also available directly.
	ex, err := ssflp.NewSSFExtractor(g, g.MaxTimestamp()+1, ssflp.SSFOptions{K: 10})
	if err != nil {
		return err
	}
	vec, err := ex.Extract(0, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nSSF vector of link 0-1 has %d entries (K(K-1)/2 - 1 = %d)\n",
		len(vec), ssflp.FeatureLen(10))
	return nil
}

package shard

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker and fault tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// record drives one admitted request to its outcome.
func record(t *testing.T, b *Breaker, ok bool) {
	t.Helper()
	if !b.Allow() {
		t.Fatalf("Allow() = false in state %v, want admission", b.State())
	}
	b.Record(ok)
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:      4,
		MinRequests: 3,
		FailureRate: 0.5,
		Cooldown:    time.Second,
		Now:         clk.Now,
	})
}

func TestBreakerTransitions(t *testing.T) {
	// Each case drives a fresh breaker through a scripted sequence and
	// checks the resulting state. step: +1 success, -1 failure, 0 advance
	// the clock past the cooldown.
	cases := []struct {
		name  string
		steps []int
		want  BreakerState
	}{
		{"stays closed on successes", []int{1, 1, 1, 1, 1, 1}, StateClosed},
		{"holds below min requests", []int{-1, -1}, StateClosed},
		{"opens at failure rate", []int{1, -1, -1}, StateOpen},
		{"opens on all failures", []int{-1, -1, -1}, StateOpen},
		{"half-open after cooldown", []int{-1, -1, -1, 0}, StateHalfOpen},
		{"probe success closes", []int{-1, -1, -1, 0, 1}, StateClosed},
		{"probe failure re-opens", []int{-1, -1, -1, 0, -1}, StateOpen},
		{"re-opened waits out a full cooldown", []int{-1, -1, -1, 0, -1, 0}, StateHalfOpen},
		{"recovered window starts fresh", []int{-1, -1, -1, 0, 1, -1, -1}, StateClosed},
		{"window slides failures out", []int{-1, 1, 1, 1, 1, -1}, StateClosed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := testBreaker(clk)
			for i, s := range tc.steps {
				switch s {
				case 0:
					clk.Advance(time.Second)
				default:
					if got := b.Allow(); !got {
						t.Fatalf("step %d: Allow() = false in state %v", i, b.State())
					}
					b.Record(s > 0)
				}
			}
			if got := b.State(); got != tc.want {
				t.Fatalf("state = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBreakerOpenFastFails(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		record(t, b, false)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	for i := 0; i < 5; i++ {
		if b.Allow() {
			t.Fatal("open breaker admitted a request before cooldown")
		}
	}
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a request 1ms before cooldown")
	}
}

func TestBreakerHalfOpenBoundsProbes(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		record(t, b, false)
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true) // probe succeeds
	if b.State() != StateClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.Record(true)
}

func TestBreakerLateRecordInOpenDropped(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		record(t, b, false)
	}
	// An in-flight request admitted before the trip reports back late.
	b.Record(true)
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open (late outcomes dropped)", b.State())
	}
	clk.Advance(time.Second)
	record(t, b, true)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed after recovery", b.State())
	}
}

func TestBreakerTransitionHook(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Window: 4, MinRequests: 2, FailureRate: 0.5, Cooldown: time.Second,
		Now: clk.Now,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	record(t, b, false)
	record(t, b, false) // trips
	clk.Advance(time.Second)
	record(t, b, true) // half-open probe closes
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestOwnerStableAndInRange(t *testing.T) {
	labels := []string{"a", "b", "node-42", "soak17x", ""}
	for _, l := range labels {
		o := Owner(l, 3)
		if o < 0 || o >= 3 {
			t.Fatalf("Owner(%q, 3) = %d out of range", l, o)
		}
		if o2 := Owner(l, 3); o2 != o {
			t.Fatalf("Owner(%q) unstable: %d vs %d", l, o, o2)
		}
	}
	if Owner("anything", 1) != 0 {
		t.Fatal("single shard must own everything")
	}
	if PairOwner("a", "b", 5) != PairOwner("b", "a", 5) {
		t.Fatal("PairOwner must be symmetric")
	}
	if PairOwner("a", "b", 5) != Owner("a", 5) {
		t.Fatal("PairOwner must anchor at the smaller label")
	}
}

// TestBreakerSmallWindowStillTrips pins the MinRequests clamp: a window
// smaller than the default MinRequests must still be able to trip — without
// the clamp the window could never hold enough outcomes and the breaker
// (and replica failover behind it) was permanently inert.
func TestBreakerSmallWindowStillTrips(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{Window: 2, Cooldown: time.Second, Now: clk.Now})
	record(t, b, false)
	record(t, b, false)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after filling a 2-outcome window with failures = %v, want open", got)
	}
}

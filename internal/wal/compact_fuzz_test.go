package wal

import (
	"fmt"
	"os"
	"testing"

	"ssflp/internal/graph"
)

// compactFuzzEvents derives a deterministic event stream from raw fuzz bytes:
// endpoints come from two disjoint 8-label pools (so a self loop is
// impossible), timestamps drift forward with occasional stale arrivals — the
// shape a sliding window actually has to cope with.
func compactFuzzEvents(data []byte) []Event {
	events := make([]Event, 0, len(data))
	var cur int64
	for _, b := range data {
		cur += int64(b >> 6)
		ts := cur
		if b&0x20 != 0 {
			ts -= int64(b & 0x1f) // stale arrival, possibly into an expired bucket
		}
		events = append(events, Event{
			U:  fmt.Sprintf("n%d", b&7),
			V:  fmt.Sprintf("m%d", (b>>3)&3),
			Ts: ts,
		})
	}
	return events
}

// windowedOver builds the canonical windowed state over a prefix of events.
func windowedOver(cfg graph.WindowConfig, events []Event) *graph.WindowedBuilder {
	w := graph.NewWindowedBuilder(cfg)
	for _, ev := range events {
		_ = w.AddEdge(ev.U, ev.V, graph.Timestamp(ev.Ts))
	}
	return w
}

// FuzzCompactWindow drives the window-compaction cycle — append, windowed
// snapshot, TruncateBefore, more appends, a torn tail — under random bucket
// boundaries and tear points, and checks the invariant the sliding-window
// design rests on: recovery plus re-windowing never loses an in-window
// record. The recovered state must equal, node id for node id and arc for
// arc, a from-scratch windowed build over exactly the events recovery
// reports applied.
func FuzzCompactWindow(f *testing.F) {
	f.Add([]byte{}, uint8(7), uint8(2), uint8(0), uint16(0))
	f.Add([]byte{0x41, 0x82, 0x23, 0xe4, 0x05, 0xa6, 0x67, 0xc8}, uint8(7), uint8(2), uint8(4), uint16(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x00, 0x20, 0x3f, 0x9c, 0x5b, 0x71}, uint8(3), uint8(1), uint8(5), uint16(7))
	f.Add([]byte{0x10, 0x51, 0x92, 0xd3, 0x14, 0x55, 0x96, 0xd7, 0x18, 0x59, 0x9a, 0xdb}, uint8(63), uint8(8), uint8(9), uint16(1))
	f.Add([]byte{0xe0, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5}, uint8(1), uint8(1), uint8(3), uint16(500))
	f.Add([]byte{0x07, 0x47, 0x87, 0xc7, 0x27, 0x67, 0xa7, 0xe7, 0x17}, uint8(15), uint8(4), uint8(0), uint16(3))

	f.Fuzz(func(t *testing.T, data []byte, span, buckets, split uint8, tear uint16) {
		events := compactFuzzEvents(data)
		if len(events) == 0 {
			return
		}
		cfg := graph.WindowConfig{
			Span:    1 + graph.Timestamp(span),
			Buckets: 1 + int(buckets%8),
		}
		snapAt := int(split) % (len(events) + 1)

		dir := t.TempDir()
		// Tiny segments so TruncateBefore really deletes sealed files.
		opts := Options{SegmentBytes: 128, Sync: SyncOff}
		l, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if snapAt > 0 {
			if _, err := l.AppendBatch(events[:snapAt]); err != nil {
				t.Fatalf("append head: %v", err)
			}
			// Window compaction: persist the windowed view, then drop every
			// sealed segment the snapshot covers.
			wb := windowedOver(cfg, events[:snapAt])
			snap := wb.Snapshot(1)
			if _, err := WriteSnapshot(dir, &Snapshot{LSN: LSN(snapAt), Labels: snap.Labels, Graph: snap.Graph}); err != nil {
				t.Fatalf("write snapshot: %v", err)
			}
			if _, err := l.TruncateBefore(LSN(snapAt) + 1); err != nil {
				t.Fatalf("truncate: %v", err)
			}
		}
		if snapAt < len(events) {
			if _, err := l.AppendBatch(events[snapAt:]); err != nil {
				t.Fatalf("append tail: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Tear the end of the active segment — the crash shape recovery
		// repairs by dropping the torn suffix.
		if tear > 0 {
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatalf("list segments: %v", err)
			}
			if len(segs) > 0 {
				last := segs[len(segs)-1].path
				info, err := os.Stat(last)
				if err != nil {
					t.Fatalf("stat segment: %v", err)
				}
				cut := min(int64(tear), info.Size())
				if err := os.Truncate(last, info.Size()-cut); err != nil {
					t.Fatalf("tear segment: %v", err)
				}
			}
		}

		l2, st, err := Recover(dir, opts, nil)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer l2.Close()
		applied := int(st.AppliedLSN)
		if applied < snapAt || applied > len(events) {
			t.Fatalf("applied LSN %d outside [%d, %d]", applied, snapAt, len(events))
		}

		got := graph.WrapWindowed(st.Builder, cfg)
		// Reconcile the streaming reference, then re-wrap so both sides carry
		// the canonical (ts, u, v) layout — the streaming builder leaves
		// arrival order in place while no bucket has expired.
		ref := windowedOver(cfg, events[:applied])
		ref.Snapshot(1)
		want := graph.WrapWindowed(ref.Builder(), cfg)
		gotSnap, wantSnap := got.Snapshot(1), want.Snapshot(1)

		// The snapshot carries the full label dictionary and the tail interns
		// in arrival order, so node ids must line up exactly with the
		// from-scratch build — which makes arc-level comparison valid.
		if len(gotSnap.Labels) != len(wantSnap.Labels) {
			t.Fatalf("labels: got %d, want %d", len(gotSnap.Labels), len(wantSnap.Labels))
		}
		for i := range gotSnap.Labels {
			if gotSnap.Labels[i] != wantSnap.Labels[i] {
				t.Fatalf("label %d: got %q, want %q", i, gotSnap.Labels[i], wantSnap.Labels[i])
			}
		}
		gg, wg := gotSnap.Graph, wantSnap.Graph
		if gg.NumNodes() != wg.NumNodes() || gg.NumEdges() != wg.NumEdges() {
			t.Fatalf("graph shape: got %d nodes / %d edges, want %d / %d (applied %d, snapAt %d)",
				gg.NumNodes(), gg.NumEdges(), wg.NumNodes(), wg.NumEdges(), applied, snapAt)
		}
		for u := range graph.NodeID(gg.NumNodes()) {
			ga, wa := gg.ArcSlice(u), wg.ArcSlice(u)
			if len(ga) != len(wa) {
				t.Fatalf("node %d: got %d arcs, want %d", u, len(ga), len(wa))
			}
			for i := range ga {
				if ga[i] != wa[i] {
					t.Fatalf("node %d arc %d: got %+v, want %+v", u, i, ga[i], wa[i])
				}
			}
		}
	})
}

package resilience

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(h http.Handler) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	return rec
}

func TestDeadlinePassesFastHandlerThrough(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("body"))
	}), Deadline(time.Second))
	rec := get(h)
	if rec.Code != http.StatusCreated || rec.Body.String() != "body" {
		t.Errorf("response = %d %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Custom") != "yes" {
		t.Error("header lost through the buffer")
	}
}

func TestDeadlineExpiryReturns504(t *testing.T) {
	released := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // a well-behaved slow handler
		close(released)
	}), Deadline(20*time.Millisecond))
	rec := get(h)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Errorf("body = %q", rec.Body.String())
	}
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Error("handler never observed ctx.Done()")
	}
}

func TestDeadlineDiscardsLateResponse(t *testing.T) {
	done := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		w.WriteHeader(http.StatusOK) // too late; must not reach the client
		w.Write([]byte("late"))
		close(done)
	}), Deadline(20*time.Millisecond))
	rec := get(h)
	<-done
	if rec.Code != http.StatusGatewayTimeout || strings.Contains(rec.Body.String(), "late") {
		t.Errorf("late write leaked: %d %q", rec.Code, rec.Body.String())
	}
}

func TestDeadlineNonPositiveDisables(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("deadline set despite d <= 0")
		}
		w.WriteHeader(http.StatusOK)
	}), Deadline(0))
	if rec := get(h); rec.Code != http.StatusOK {
		t.Errorf("code = %d", rec.Code)
	}
}

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var logged string
	logf := func(format string, args ...any) { logged = format }
	boom := true
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if boom {
			panic("kaboom")
		}
		w.WriteHeader(http.StatusOK)
	}), Recover(logf))
	if rec := get(h); rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if logged == "" {
		t.Error("panic was not logged")
	}
	boom = false
	if rec := get(h); rec.Code != http.StatusOK {
		t.Errorf("server did not survive the panic: %d", rec.Code)
	}
}

func TestRecoverCatchesPanicRaisedThroughDeadline(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("inside the deadline goroutine")
	}), Recover(nil), Deadline(time.Second))
	if rec := get(h); rec.Code != http.StatusInternalServerError {
		t.Errorf("code = %d, want 500", rec.Code)
	}
}

func TestRecoverReRaisesAbortHandler(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), Recover(nil))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed")
		}
	}()
	get(h)
}

func TestLimiterRejectsWhenSaturated(t *testing.T) {
	lim := NewLimiter(1, 0, 10*time.Millisecond)
	block := make(chan struct{})
	entered := make(chan struct{})
	var enteredOnce sync.Once
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enteredOnce.Do(func() { close(entered) })
		<-block
		w.WriteHeader(http.StatusOK)
	}), lim.Middleware())
	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-entered
	rec := get(h)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(block)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Errorf("first request = %d", first.Code)
	}
	// Slot released: the limiter admits again.
	if rec := get(h); rec.Code != http.StatusOK {
		t.Errorf("after release: %d", rec.Code)
	}
}

func TestLimiterQueueTimesOut(t *testing.T) {
	lim := NewLimiter(1, 1, 30*time.Millisecond)
	if err := lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lim.Acquire(context.Background())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("queued acquire = %v, want ErrSaturated", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("queued acquire gave up before maxWait")
	}
	lim.Release()
	if err := lim.Acquire(context.Background()); err != nil {
		t.Errorf("after release: %v", err)
	}
	lim.Release()
}

func TestLimiterQueueHonorsContext(t *testing.T) {
	lim := NewLimiter(1, 1, time.Minute)
	if err := lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer lim.Release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := lim.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queue wait = %v", err)
	}
}

func TestLimiterQueueFullRejectsImmediately(t *testing.T) {
	lim := NewLimiter(1, 0, time.Minute)
	if err := lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer lim.Release()
	start := time.Now()
	if err := lim.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("zero-queue limiter waited instead of rejecting")
	}
}

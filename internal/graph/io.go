package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadResult carries a parsed edge list: the graph, the label dictionary
// (node id -> original token) and counts of skipped lines.
type LoadResult struct {
	Graph     *Graph
	Labels    []string
	SelfLoops int // self loops encountered and skipped
	Comments  int // comment/blank lines skipped
}

// Lookup returns the node id of an original label token, or -1.
func (r *LoadResult) Lookup(label string) NodeID {
	for i, l := range r.Labels {
		if l == label {
			return NodeID(i)
		}
	}
	return -1
}

// LoadEdgeList parses a whitespace-separated edge list of the form
//
//	<src> <dst> [timestamp]
//
// where src/dst are arbitrary tokens (mapped densely to NodeIDs in first-seen
// order) and the optional timestamp is an integer (default 0). Lines starting
// with '#' or '%' and blank lines are skipped; self loops are counted and
// dropped. This is the format the paper's KONECT/SNAP datasets ship in, so
// the real data can be substituted for the synthetic generators.
func LoadEdgeList(r io.Reader) (*LoadResult, error) {
	res := &LoadResult{Graph: New(0)}
	ids := make(map[string]NodeID)
	intern := func(tok string) NodeID {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := res.Graph.AddNode()
		ids[tok] = id
		res.Labels = append(res.Labels, tok)
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			res.Comments++
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least 2 fields, got %d", lineNo, len(fields))
		}
		u := intern(fields[0])
		v := intern(fields[1])
		var ts Timestamp
		if len(fields) >= 3 {
			t, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad timestamp %q: %w", lineNo, fields[2], err)
			}
			ts = Timestamp(t)
		}
		if u == v {
			res.SelfLoops++
			continue
		}
		if err := res.Graph.AddEdge(u, v, ts); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan edge list: %w", err)
	}
	return res, nil
}

// LoadEdgeListFile opens path and parses it with LoadEdgeList.
func LoadEdgeListFile(path string) (*LoadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: open %q: %w", path, err)
	}
	defer f.Close()
	return LoadEdgeList(f)
}

// WriteEdgeList writes the graph in the "<u> <v> <ts>" format accepted by
// LoadEdgeList, one multi-edge per line, using numeric node ids.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Ts); err != nil {
			return fmt.Errorf("graph: write edge list: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush edge list: %w", err)
	}
	return nil
}

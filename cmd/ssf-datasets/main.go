// Command ssf-datasets generates the synthetic Table II datasets and writes
// them as timestamped edge-list files — the format ssf-predict and
// ssflp.LoadEdgeList consume — together with summary statistics.
//
//	ssf-datasets -out /tmp/nets -scale 8            # all seven datasets
//	ssf-datasets -out /tmp/nets -datasets Digg -histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ssflp/internal/datagen"
	"ssflp/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssf-datasets:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssf-datasets", flag.ContinueOnError)
	var (
		out       = fs.String("out", ".", "output directory")
		scale     = fs.Int("scale", 1, "dataset scale divisor (1 = paper scale)")
		seed      = fs.Int64("seed", 1, "random seed")
		datasets  = fs.String("datasets", "", "comma-separated subset (default all)")
		histogram = fs.Bool("histogram", false, "also print per-timestamp link counts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := datagen.Names()
	if *datasets != "" {
		names = names[:0]
		for _, n := range strings.Split(*datasets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for _, name := range names {
		cfg, err := datagen.ByName(name, *seed)
		if err != nil {
			return err
		}
		cfg = datagen.Scale(cfg, *scale)
		g, err := datagen.Generate(cfg)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, sanitize(name)+".txt")
		if err := writeGraph(path, g); err != nil {
			return err
		}
		s := g.Statistics()
		fmt.Printf("%-10s -> %s  (%d nodes, %d links, span %d, avg degree %.2f)\n",
			name, path, s.NumNodes, s.NumEdges, s.TimeSpan, s.AvgDegree)
		if *histogram {
			for _, b := range g.TimestampHistogram() {
				fmt.Printf("  t=%-6d %d links\n", b.Ts, b.Count)
			}
		}
	}
	return nil
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %q: %w", path, err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		return err
	}
	return f.Close()
}

func sanitize(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// windowEvent is one timestamped labeled edge in a test stream.
type windowEvent struct {
	u, v string
	ts   Timestamp
}

// windowReference independently computes the expected retained state of a
// stream under cfg: the full label dictionary in first-seen order, and the
// in-window edges laid out in canonical (ts, u, v) order — exactly what a
// from-scratch rebuild of only the live edges must produce.
func windowReference(t *testing.T, events []windowEvent, cfg WindowConfig) *Builder {
	t.Helper()
	cfg = cfg.withDefaults()
	ref := NewBuilder()
	for _, e := range events {
		ref.Intern(e.u)
		ref.Intern(e.v)
	}
	width := cfg.bucketWidth()
	bucketOf := func(ts Timestamp) int64 {
		q := int64(ts) / int64(width)
		if ts < 0 && int64(ts)%int64(width) != 0 {
			q--
		}
		return q
	}
	maxBucket := int64(0)
	have := false
	for _, e := range events {
		if b := bucketOf(e.ts); !have || b > maxBucket {
			maxBucket, have = b, true
		}
	}
	minLive := maxBucket - int64(cfg.Buckets) + 1
	var live []windowEdge
	for _, e := range events {
		if bucketOf(e.ts) < minLive {
			continue
		}
		u, _ := ref.Lookup(e.u)
		v, _ := ref.Lookup(e.v)
		if u > v {
			u, v = v, u
		}
		live = append(live, windowEdge{u: u, v: v, ts: e.ts})
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	})
	g := ref.Graph()
	g.EnsureNodes(len(ref.Labels()))
	for _, e := range live {
		if err := g.AddEdge(e.u, e.v, e.ts); err != nil {
			t.Fatalf("reference add edge: %v", err)
		}
	}
	return ref
}

// assertSameAdjacency compares two graphs exactly: node count, edge count,
// and every adjacency list arc for arc, in order. Identical adjacency makes
// every downstream computation (extraction, scoring) byte-identical.
func assertSameAdjacency(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("nodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for u := 0; u < want.NumNodes(); u++ {
		ga, wa := got.ArcSlice(NodeID(u)), want.ArcSlice(NodeID(u))
		if len(ga) != len(wa) {
			t.Fatalf("node %d: %d arcs, want %d", u, len(ga), len(wa))
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("node %d arc %d: %+v, want %+v", u, i, ga[i], wa[i])
			}
		}
	}
	if got.MinTimestamp() != want.MinTimestamp() || got.MaxTimestamp() != want.MaxTimestamp() {
		t.Fatalf("ts bounds: [%d,%d], want [%d,%d]",
			got.MinTimestamp(), got.MaxTimestamp(), want.MinTimestamp(), want.MaxTimestamp())
	}
}

// edgeMultiset collects id-level "u-v-ts" edge counts.
func edgeMultiset(g *Graph) map[string]int {
	out := map[string]int{}
	for e := range g.Edges() {
		out[fmt.Sprintf("%d-%d-%d", e.U, e.V, e.Ts)]++
	}
	return out
}

// labelMultiset collects label-level canonical edge counts, the comparison
// that survives interning-order changes (e.g. a shuffled stream).
func labelMultiset(g *Graph, labels []string) map[string]int {
	out := map[string]int{}
	for e := range g.Edges() {
		a, b := labels[e.U], labels[e.V]
		if a > b {
			a, b = b, a
		}
		out[fmt.Sprintf("%s|%s|%d", a, b, e.Ts)]++
	}
	return out
}

// randomWindowStream generates a deterministic stream with forward drift
// plus out-of-order and stale timestamps — the shapes that make windowed
// retention interesting.
func randomWindowStream(rng *rand.Rand, n int) []windowEvent {
	events := make([]windowEvent, 0, n)
	base := Timestamp(0)
	for len(events) < n {
		u := fmt.Sprintf("n%d", rng.Intn(20))
		v := fmt.Sprintf("n%d", rng.Intn(20))
		if u == v {
			continue
		}
		ts := base
		switch rng.Intn(4) {
		case 0: // late arrival, possibly below the window
			ts = base - Timestamp(rng.Intn(60))
		case 1: // in-bucket jitter
			ts = base - Timestamp(rng.Intn(5))
		default: // forward drift
			base += Timestamp(rng.Intn(7))
			ts = base
		}
		events = append(events, windowEvent{u: u, v: v, ts: ts})
	}
	return events
}

// TestWindowedByteIdentityProperty is the tentpole's anchor: after any
// stream (including expiry churn and late arrivals), the windowed snapshot
// holds exactly the in-window edge multiset, and the rebuilt live graph is
// adjacency-identical — arc for arc — to a from-scratch rebuild of only the
// in-window edges. It also pins the relaxed Freeze contract: a snapshot
// frozen before further expiry must stay untouched by later rebuilds.
func TestWindowedByteIdentityProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := WindowConfig{
			Span:    Timestamp(5 + rng.Intn(40)),
			Buckets: 1 + rng.Intn(6),
		}
		events := randomWindowStream(rng, 60+rng.Intn(200))
		cut := len(events) * 2 / 3

		w := NewWindowedBuilder(cfg)
		for _, e := range events[:cut] {
			if err := w.AddEdge(e.u, e.v, e.ts); err != nil {
				t.Fatalf("seed %d: add edge: %v", seed, err)
			}
		}
		early := w.Snapshot(1)
		earlyCopy := early.Graph.Clone()

		for _, e := range events[cut:] {
			if err := w.AddEdge(e.u, e.v, e.ts); err != nil {
				t.Fatalf("seed %d: add edge: %v", seed, err)
			}
		}
		snap := w.Snapshot(2)
		ref := windowReference(t, events, cfg)

		// The served snapshot is exactly the in-window edge multiset.
		got, want := edgeMultiset(snap.Graph), edgeMultiset(ref.Graph())
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d distinct edges, want %d", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: edge %s count %d, want %d", seed, k, got[k], n)
			}
		}
		if gotExp := int(w.ExpiredEdges()); gotExp != len(events)-snap.Graph.NumEdges() {
			t.Fatalf("seed %d: expired %d, want %d", seed, gotExp, len(events)-snap.Graph.NumEdges())
		}

		// Force a rebuild and require the canonical layout byte for byte.
		w.dirty = true
		rebuilt := w.Snapshot(3)
		assertSameAdjacency(t, rebuilt.Graph, ref.Graph())

		// The early snapshot's shared arc rows must have survived every
		// later expiry rebuild untouched.
		assertSameAdjacency(t, early.Graph, earlyCopy)
	}
}

// TestWindowExpiryCommutesWithIngestOrder: feeding the same timestamped
// edge stream in any order yields an identical windowed snapshot (compared
// at label level, since interning order follows arrival) and an identical
// expired count.
func TestWindowExpiryCommutesWithIngestOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		cfg := WindowConfig{Span: Timestamp(8 + rng.Intn(30)), Buckets: 1 + rng.Intn(5)}
		events := randomWindowStream(rng, 80+rng.Intn(120))
		shuffled := append([]windowEvent(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		build := func(evs []windowEvent) (*WindowedBuilder, *Snapshot) {
			w := NewWindowedBuilder(cfg)
			for _, e := range evs {
				if err := w.AddEdge(e.u, e.v, e.ts); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			return w, w.Snapshot(1)
		}
		w1, s1 := build(events)
		w2, s2 := build(shuffled)

		m1 := labelMultiset(s1.Graph, s1.Labels)
		m2 := labelMultiset(s2.Graph, s2.Labels)
		if len(m1) != len(m2) {
			t.Fatalf("seed %d: %d vs %d distinct edges", seed, len(m1), len(m2))
		}
		for k, n := range m1 {
			if m2[k] != n {
				t.Fatalf("seed %d: edge %s: %d vs %d", seed, k, n, m2[k])
			}
		}
		if w1.ExpiredEdges() != w2.ExpiredEdges() {
			t.Fatalf("seed %d: expired %d vs %d", seed, w1.ExpiredEdges(), w2.ExpiredEdges())
		}
		lo1, ok1 := w1.WindowStart()
		lo2, ok2 := w2.WindowStart()
		if lo1 != lo2 || ok1 != ok2 {
			t.Fatalf("seed %d: window start %d/%v vs %d/%v", seed, lo1, ok1, lo2, ok2)
		}
	}
}

// TestWindowLateEdgeDropped pins the arrival-order independence mechanism:
// an edge whose bucket already expired is accepted but never retained, while
// its labels still intern.
func TestWindowLateEdgeDropped(t *testing.T) {
	w := NewWindowedBuilder(WindowConfig{Span: 10, Buckets: 2}) // width 5
	if err := w.AddEdge("a", "b", 100); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge("c", "d", 10); err != nil {
		t.Fatal(err)
	}
	if n := w.ExpiredEdges(); n != 1 {
		t.Fatalf("expired = %d, want 1", n)
	}
	if _, ok := w.Lookup("c"); !ok {
		t.Fatal("late edge's label was not interned")
	}
	snap := w.Snapshot(1)
	if snap.Graph.NumEdges() != 1 || snap.Stats.NumNodes != 4 {
		t.Fatalf("snapshot has %d edges / %d nodes, want 1 / 4",
			snap.Graph.NumEdges(), snap.Stats.NumNodes)
	}
	if lo, ok := w.WindowStart(); !ok || lo != 95 {
		t.Fatalf("window start = %d/%v, want 95/true", lo, ok)
	}
}

// TestWindowPassthroughDisabled: Span 0 must behave exactly like the plain
// builder — same adjacency, no window bookkeeping.
func TestWindowPassthroughDisabled(t *testing.T) {
	w := NewWindowedBuilder(WindowConfig{})
	plain := NewBuilder()
	for i := 0; i < 50; i++ {
		u, v := fmt.Sprintf("p%d", i%7), fmt.Sprintf("p%d", (i+3)%7)
		ts := Timestamp(i * 13 % 29)
		if err := w.AddEdge(u, v, ts); err != nil {
			t.Fatal(err)
		}
		if err := plain.AddEdge(u, v, ts); err != nil {
			t.Fatal(err)
		}
	}
	assertSameAdjacency(t, w.Snapshot(1).Graph, plain.Snapshot(1).Graph)
	if w.ExpiredEdges() != 0 {
		t.Fatalf("expired = %d on a passthrough builder", w.ExpiredEdges())
	}
	if _, ok := w.WindowStart(); ok {
		t.Fatal("passthrough builder reports an active window")
	}
}

// TestWindowSelfLoopRejected mirrors Builder.AddEdge: the loop errors, the
// label still interns.
func TestWindowSelfLoopRejected(t *testing.T) {
	w := NewWindowedBuilder(WindowConfig{Span: 10})
	if err := w.AddEdge("x", "x", 5); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
	if _, ok := w.Lookup("x"); !ok {
		t.Fatal("self-loop label was not interned")
	}
}

// TestWrapWindowed: imposing a window on an existing builder (the recovery
// and replica-bootstrap path) drops stale edges, keeps every label, and lays
// the survivors out canonically — identical to a from-scratch windowed
// build of the same stream after a rebuild.
func TestWrapWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := randomWindowStream(rng, 150)
	cfg := WindowConfig{Span: 20, Buckets: 4}

	plain := NewBuilder()
	for _, e := range events {
		if err := plain.AddEdge(e.u, e.v, e.ts); err != nil {
			t.Fatal(err)
		}
	}
	total := plain.Graph().NumEdges()
	w := WrapWindowed(plain, cfg)
	ref := windowReference(t, events, cfg)
	assertSameAdjacency(t, w.Snapshot(1).Graph, ref.Graph())
	if len(w.Labels()) != len(ref.Labels()) {
		t.Fatalf("labels: %d, want %d", len(w.Labels()), len(ref.Labels()))
	}
	if int(w.ExpiredEdges()) != total-ref.Graph().NumEdges() {
		t.Fatalf("expired = %d, want %d", w.ExpiredEdges(), total-ref.Graph().NumEdges())
	}

	// Disabled wrap is a true passthrough: same graph object, no copies.
	p2 := NewBuilder()
	_ = p2.AddEdge("a", "b", 1)
	if got := WrapWindowed(p2, WindowConfig{}).Graph(); got != p2.Graph() {
		t.Fatal("disabled WrapWindowed replaced the graph")
	}
}

package core

import (
	"strings"
	"sync"
	"testing"

	"ssflp/internal/graph"
	"ssflp/internal/telemetry"
)

// metricsTestGraph builds a small history graph with enough structure for a
// K=3 extraction around the pair (0, 1).
func metricsTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(0)
	edges := [][2]graph.NodeID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}, {2, 4},
	}
	for i, e := range edges {
		g.AddEdge(e[0], e[1], graph.Timestamp(i+1))
	}
	return g
}

func TestExtractorStageMetrics(t *testing.T) {
	g := metricsTestGraph(t)
	e, err := NewExtractor(g, 100, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.SetMetrics(NewMetrics(reg))

	for i := 0; i < 5; i++ {
		if _, err := e.Extract(0, 1); err != nil {
			t.Fatalf("Extract: %v", err)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := telemetry.Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition failed lint:\n%s\nerror: %v", out, err)
	}
	for _, stage := range []string{"hhop", "combine", "palette_wl", "assemble"} {
		want := `ssf_extract_stage_duration_seconds_count{stage="` + stage + `"} 5`
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "ssf_extracts_total 5") {
		t.Errorf("extraction counter wrong:\n%s", out)
	}
	if !strings.Contains(out, "ssf_extract_errors_total 0") {
		t.Errorf("error counter should be zero:\n%s", out)
	}
}

func TestExtractorMetricsMatchUntimed(t *testing.T) {
	g := metricsTestGraph(t)
	plain, err := NewExtractor(g, 100, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := NewExtractor(g, 100, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	timed.SetMetrics(NewMetrics(telemetry.NewRegistry()))

	a, err := plain.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := timed.Extract(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("vector lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timed extraction changed the vector at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestCachePurge(t *testing.T) {
	g := metricsTestGraph(t)
	e, err := NewExtractor(g, 100, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCachingExtractor(e, 16)
	if _, err := c.Extract(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extract(0, 1); err != nil {
		t.Fatal(err)
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("pre-purge stats = %d/%d/%d, want 1/1/1", hits, misses, size)
	}

	c.Purge()
	hits, misses, size = c.Stats()
	if size != 0 {
		t.Fatalf("post-purge size = %d, want 0", size)
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("purge must keep statistics, got %d/%d", hits, misses)
	}
	if _, err := c.Extract(0, 1); err != nil {
		t.Fatal(err)
	}
	_, misses, size = c.Stats()
	if misses != 2 || size != 1 {
		t.Fatalf("post-purge extract stats = misses %d size %d, want 2 and 1", misses, size)
	}
}

func TestCachePurgeGenerationGuard(t *testing.T) {
	g := metricsTestGraph(t)
	e, err := NewExtractor(g, 100, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCachingExtractor(e, 16)

	// Deterministically reproduce an extraction that straddles a purge by
	// replaying Extract's insert sequence with a stale generation snapshot:
	// the guard must suppress the insert.
	stale := c.gen.Load()
	c.Purge()
	if stale == c.gen.Load() {
		t.Fatal("Purge must advance the generation")
	}

	// The observable contract under concurrency: purging while extracting
	// never corrupts state (run with -race) and never serves an error.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); c.Purge() }()
		go func() {
			defer wg.Done()
			if _, err := c.Extract(0, 1); err != nil {
				t.Errorf("Extract during purge: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, err := c.Extract(0, 1); err != nil {
		t.Fatal(err)
	}
}

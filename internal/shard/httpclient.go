package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"ssflp/internal/resilience"
	"ssflp/internal/trace"
)

// HTTPClient speaks the ssf-serve HTTP API to one remote shard. Every
// outbound request carries the caller's X-Request-Id (when the context holds
// one), so a scatter-gathered query is traceable across processes. Status
// mapping: 2xx decodes, 404 is ErrNotFound, other 4xx are domain errors
// returned as-is, and 429/5xx/transport failures wrap ErrUnavailable so the
// router retries and the breaker counts them.
type HTTPClient struct {
	base string
	hc   *http.Client

	// TopIndex/TopCount, when TopCount > 1, ask the shard to enumerate
	// only the candidate pairs it owns (shard_index/shard_count query
	// parameters on GET /top), making the top-N scatter a real partition
	// of the work instead of N redundant full scans.
	TopIndex, TopCount int
}

// NewHTTPClient builds a client for the shard at baseURL (e.g.
// "http://10.0.0.7:8080"). The underlying http.Client carries no timeout of
// its own: attempt deadlines come from the router via the context.
func NewHTTPClient(baseURL string, hc *http.Client) (*HTTPClient, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("shard: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		// "host:port" parses as scheme "host"; retry as plain HTTP.
		u, err = url.Parse("http://" + baseURL)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("shard: bad base URL %q", baseURL)
		}
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &HTTPClient{base: strings.TrimRight(u.String(), "/"), hc: hc}, nil
}

// errBody extracts the {"error": ...} envelope, falling back to the status.
func errBody(status int, body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return http.StatusText(status)
}

// do issues one request and decodes a 2xx JSON answer into out.
func (c *HTTPClient) do(ctx context.Context, method, path string, query url.Values, body any, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := resilience.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	// Continue the trace across the process boundary; the remote shard's
	// middleware adopts the trace ID into its own ring.
	trace.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err() // caller's deadline or cancellation, classified upstream
		}
		return Unavailable(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return Unavailable(err)
	}
	switch {
	case resp.StatusCode < 300:
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return Unavailable(fmt.Errorf("malformed shard answer: %w", err))
		}
		return nil
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, errBody(resp.StatusCode, raw))
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		return Unavailable(fmt.Errorf("shard answered %d: %s", resp.StatusCode, errBody(resp.StatusCode, raw)))
	default:
		return fmt.Errorf("shard rejected request (%d): %s", resp.StatusCode, errBody(resp.StatusCode, raw))
	}
}

func (c *HTTPClient) Score(ctx context.Context, u, v string) (ScoreResult, error) {
	var out ScoreResult
	q := url.Values{"u": {u}, "v": {v}}
	if err := c.do(ctx, http.MethodGet, "/score", q, nil, &out); err != nil {
		return ScoreResult{}, err
	}
	return out, nil
}

func (c *HTTPClient) Top(ctx context.Context, n int) (TopResult, error) {
	var out TopResult
	q := url.Values{"n": {strconv.Itoa(n)}}
	if c.TopCount > 1 {
		q.Set("shard_index", strconv.Itoa(c.TopIndex))
		q.Set("shard_count", strconv.Itoa(c.TopCount))
	}
	if err := c.do(ctx, http.MethodGet, "/top", q, nil, &out); err != nil {
		return TopResult{}, err
	}
	return out, nil
}

func (c *HTTPClient) Batch(ctx context.Context, pairs [][2]string) ([]ScoreResult, error) {
	req := make([]map[string]string, len(pairs))
	for i, p := range pairs {
		req[i] = map[string]string{"u": p[0], "v": p[1]}
	}
	var out struct {
		Results []ScoreResult `json:"results"`
	}
	if err := c.do(ctx, http.MethodPost, "/batch", nil, req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

func (c *HTTPClient) Ingest(ctx context.Context, edges []Edge) (IngestResult, error) {
	var out IngestResult
	if err := c.do(ctx, http.MethodPost, "/ingest", nil, edges, &out); err != nil {
		return IngestResult{}, err
	}
	return out, nil
}

func (c *HTTPClient) Health(ctx context.Context) (HealthInfo, error) {
	var out struct {
		Ready bool   `json:"ready"`
		Epoch uint64 `json:"epoch"`
		Nodes int    `json:"nodes"`
		Links int    `json:"links"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, &out); err != nil {
		return HealthInfo{}, err
	}
	return HealthInfo{Ready: out.Ready, Epoch: out.Epoch, Nodes: out.Nodes, Links: out.Links}, nil
}

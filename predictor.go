package ssflp

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"ssflp/internal/core"
	"ssflp/internal/eval"
	"ssflp/internal/experiments"
	"ssflp/internal/graph"
	"ssflp/internal/heuristics"
	"ssflp/internal/linreg"
	"ssflp/internal/nmf"
	"ssflp/internal/nn"
	"ssflp/internal/wlf"
)

// Method identifies one of the fifteen link-prediction methods evaluated in
// the paper's Table III.
type Method int

// The supervised SSF/WLF methods and the unsupervised baselines.
const (
	// SSFNM is SSF + neural machine (the paper's strongest method).
	SSFNM Method = iota + 1
	// SSFLR is SSF + linear regression.
	SSFLR
	// SSFNMW is the static SSF-W + neural machine ablation.
	SSFNMW
	// SSFLRW is the static SSF-W + linear regression ablation.
	SSFLRW
	// WLNM is the Weisfeiler-Lehman neural machine baseline.
	WLNM
	// WLLR is WLF + linear regression.
	WLLR
	// CN is Common Neighbors.
	CN
	// Jaccard is the Jaccard index.
	Jaccard
	// PA is Preferential Attachment.
	PA
	// AA is Adamic-Adar.
	AA
	// RA is Resource Allocation.
	RA
	// RWRA is reliable Weighted Resource Allocation.
	RWRA
	// Katz is the truncated Katz index.
	Katz
	// RandomWalk is the superposed local random walk index.
	RandomWalk
	// NMF is non-negative matrix factorization.
	NMF
)

// methodLabels maps Method constants to the paper's Table III row labels.
var methodLabels = map[Method]string{
	SSFNM: "SSFNM", SSFLR: "SSFLR", SSFNMW: "SSFNM-W", SSFLRW: "SSFLR-W",
	WLNM: "WLNM", WLLR: "WLLR", CN: "CN", Jaccard: "Jac.", PA: "PA",
	AA: "AA", RA: "RA", RWRA: "rWRA", Katz: "Katz", RandomWalk: "RW", NMF: "NMF",
}

// String implements fmt.Stringer with the paper's label.
func (m Method) String() string {
	if s, ok := methodLabels[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ErrUnknownMethod is returned for an unrecognized Method value.
var ErrUnknownMethod = errors.New("ssflp: unknown method")

// TrainOptions configures Train and EvaluateMethod.
type TrainOptions struct {
	// K is the (K-)structure subgraph size. Default 10.
	K int
	// Theta is the influence decay factor. Default 0.5.
	Theta float64
	// Epochs for neural methods. Default 200 (the paper uses 2000).
	Epochs int
	// Seed drives the split, sampling and model initialization.
	Seed int64
	// MaxPositives caps the training positives (0 = all).
	MaxPositives int
	// Workers bounds feature-extraction parallelism. Default NumCPU.
	Workers int
	// TrainFraction of positives used for fitting. Default 0.7.
	TrainFraction float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.K == 0 {
		o.K = core.DefaultK
	}
	if o.Theta == 0 {
		o.Theta = core.DefaultTheta
	}
	if o.Epochs == 0 {
		o.Epochs = nn.DefaultEpochs
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.TrainFraction == 0 {
		o.TrainFraction = 0.7
	}
	return o
}

// Predictor is a trained link predictor. Safe for concurrent scoring once
// wiring (SetMetrics, EnableCache) is done.
type Predictor struct {
	method    Method
	score     func(u, v NodeID) (float64, error)
	threshold float64
	state     *predictorState // serializable parameters for Save

	// extract is the feature extraction seam the score closures call for
	// feature methods; EnableCache swaps it for a caching wrapper. Nil for
	// heuristic and NMF methods.
	extract func(u, v NodeID) ([]float64, error)
	// bindScore rebuilds the score function against an immutable graph
	// epoch (see Bind): the fitted model parameters are graph-independent,
	// only the extraction / heuristic-view layer is epoch-specific. For
	// feature methods extract is the epoch's (possibly cached) extractor;
	// heuristic methods ignore it and rebuild from the snapshot's static
	// view; NMF ignores both (the factor matrices are fixed at training).
	bindScore func(snap *graph.Snapshot, extract func(u, v NodeID) ([]float64, error)) (func(u, v NodeID) (float64, error), error)
	// featScore maps an already-extracted feature vector to a score — the
	// model half of the feature-method pipeline, with extraction factored
	// out. Batch scoring (Binding.ScoreCandidatesCtx) composes it with the
	// shared-frontier kernel's extractor. Nil for heuristic and NMF methods.
	featScore func(feat []float64) (float64, error)
	// ssfExtractor is the raw core extractor behind extract when the method
	// uses SSF features (nil for WLF, heuristics, NMF); it is what the
	// cache wraps and what stage metrics attach to.
	ssfExtractor *core.Extractor
	cache        *core.CachingExtractor
	metrics      *PredictorMetrics
}

// Method returns the method this predictor was trained with.
func (p *Predictor) Method() Method { return p.method }

// Threshold returns the classification threshold selected on training data.
func (p *Predictor) Threshold() float64 { return p.threshold }

// Score returns the closeness score of a candidate future link. For
// neural methods it is the softmax probability of the positive class.
func (p *Predictor) Score(u, v NodeID) (float64, error) { return p.score(u, v) }

// Predict classifies a candidate link: true means the link is predicted to
// emerge (score above the training-selected threshold).
func (p *Predictor) Predict(u, v NodeID) (bool, error) {
	s, err := p.score(u, v)
	if err != nil {
		return false, err
	}
	return s > p.threshold, nil
}

// Train fits a predictor on the dynamic network g following the paper's
// protocol: links at the last timestamp l_t become positive examples,
// equally many fake links are sampled as negatives, features are extracted
// from the history before l_t, and the model is fit on the training split.
// The returned Predictor scores candidate links against the full network
// (present time l_t + 1), ready for true future prediction.
func Train(g *Graph, method Method, opts TrainOptions) (*Predictor, error) {
	opts = opts.withDefaults()
	ds, err := eval.BuildDataset(g, eval.SplitOptions{
		TrainFraction: opts.TrainFraction,
		Seed:          opts.Seed,
		MaxPositives:  opts.MaxPositives,
	})
	if err != nil {
		return nil, fmt.Errorf("ssflp: build training split: %w", err)
	}
	history := g.Before(ds.Present)
	switch method {
	case SSFNM, SSFLR, SSFNMW, SSFLRW, WLNM, WLLR:
		return trainFeatureModel(g, history, ds, method, opts)
	case CN, Jaccard, PA, AA, RA, RWRA, Katz, RandomWalk:
		return trainScorer(g, history, ds, method)
	case NMF:
		return trainNMF(g, history, ds, opts)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownMethod, int(method))
	}
}

// featureExtractor builds the method's extractor over the given graph with
// the given present time. For SSF-based methods the raw *core.Extractor is
// also returned so callers can attach caching and stage metrics; it is nil
// for WLF (which has its own extractor type).
func featureExtractor(method Method, g *Graph, present Timestamp, opts TrainOptions) (func(u, v NodeID) ([]float64, error), *core.Extractor, error) {
	switch method {
	case SSFNM, SSFLR:
		ex, err := core.NewExtractor(g, present, core.Options{
			K: opts.K, Theta: opts.Theta, Mode: core.EntryInverseDistance,
		})
		if err != nil {
			return nil, nil, err
		}
		return ex.Extract, ex, nil
	case SSFNMW, SSFLRW:
		ex, err := core.NewExtractor(g, present, core.Options{
			K: opts.K, Theta: opts.Theta, Mode: core.EntryCount,
		})
		if err != nil {
			return nil, nil, err
		}
		return ex.Extract, ex, nil
	case WLNM, WLLR:
		ex, err := wlf.NewExtractor(g, wlf.Options{K: opts.K})
		if err != nil {
			return nil, nil, err
		}
		return ex.Extract, nil, nil
	default:
		return nil, nil, fmt.Errorf("%w: %d is not a feature method", ErrUnknownMethod, int(method))
	}
}

// extractParallel maps the extractor over samples with a fixed worker pool
// (exactly `workers` goroutines, not one per sample) and stops dispatching
// after the first extraction error.
func extractParallel(samples []eval.Sample, workers int, extract func(u, v NodeID) ([]float64, error)) ([][]float64, error) {
	out := make([][]float64, len(samples))
	err := runIndexed(context.Background(), len(samples), workers, func(i int) error {
		feat, err := extract(samples[i].Pair.U, samples[i].Pair.V)
		if err != nil {
			return fmt.Errorf("ssflp: extract %v: %w", samples[i].Pair, err)
		}
		out[i] = feat
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// trainFeatureModel handles the six supervised feature + model methods.
func trainFeatureModel(g, history *Graph, ds *eval.Dataset, method Method, opts TrainOptions) (*Predictor, error) {
	trainExtract, _, err := featureExtractor(method, history, ds.Present, opts)
	if err != nil {
		return nil, fmt.Errorf("ssflp: %v extractor: %w", method, err)
	}
	x, err := extractParallel(ds.Train, opts.Workers, trainExtract)
	if err != nil {
		return nil, err
	}
	y := eval.Labels(ds.Train)

	// The inference extractor sees the full network, with the present time
	// one step past the last observed timestamp.
	inferExtract, inferRaw, err := featureExtractor(method, g, g.MaxTimestamp()+1, opts)
	if err != nil {
		return nil, fmt.Errorf("ssflp: %v inference extractor: %w", method, err)
	}

	switch method {
	case SSFLR, SSFLRW, WLLR:
		model, err := linreg.Fit(x, y, linreg.Options{})
		if err != nil {
			return nil, fmt.Errorf("ssflp: %v fit: %w", method, err)
		}
		trainScores := make([]float64, len(x))
		for i, xi := range x {
			if trainScores[i], err = model.Score(xi); err != nil {
				return nil, fmt.Errorf("ssflp: %v: %w", method, err)
			}
		}
		th, err := eval.BestThreshold(trainScores, y)
		if err != nil {
			return nil, fmt.Errorf("ssflp: %v threshold: %w", method, err)
		}
		linState := model.State()
		p := &Predictor{
			method:    method,
			threshold: th,
			state: &predictorState{
				Version: predictorStateVersion, Method: method, Threshold: th,
				K: opts.K, Theta: opts.Theta, Linear: &linState,
			},
			extract:      inferExtract,
			ssfExtractor: inferRaw,
		}
		p.bindScore = linregBind(model)
		p.featScore = model.Score
		// Score goes through p.extract — the seam EnableCache swaps — not
		// the captured inferExtract.
		p.score = func(u, v NodeID) (float64, error) {
			feat, err := p.extract(u, v)
			if err != nil {
				return 0, err
			}
			return model.Score(feat)
		}
		return p, nil
	default: // SSFNM, SSFNMW, WLNM
		scaler, err := nn.FitStandardizer(x)
		if err != nil {
			return nil, fmt.Errorf("ssflp: %v scaler: %w", method, err)
		}
		if x, err = scaler.TransformAll(x); err != nil {
			return nil, fmt.Errorf("ssflp: %v: %w", method, err)
		}
		net, err := nn.New(nn.Config{Epochs: opts.Epochs, Seed: opts.Seed, EarlyStop: true})
		if err != nil {
			return nil, fmt.Errorf("ssflp: %v config: %w", method, err)
		}
		if err := net.Train(x, y); err != nil {
			return nil, fmt.Errorf("ssflp: %v train: %w", method, err)
		}
		netState, err := net.State()
		if err != nil {
			return nil, fmt.Errorf("ssflp: %v snapshot: %w", method, err)
		}
		scalerState := scaler.State()
		p := &Predictor{
			method:    method,
			threshold: 0.5,
			state: &predictorState{
				Version: predictorStateVersion, Method: method, Threshold: 0.5,
				K: opts.K, Theta: opts.Theta, Network: netState, Scaler: &scalerState,
			},
			extract:      inferExtract,
			ssfExtractor: inferRaw,
		}
		p.bindScore = networkBind(net, scaler)
		p.featScore = scaledNetScore(net, scaler)
		p.score = func(u, v NodeID) (float64, error) {
			feat, err := p.extract(u, v)
			if err != nil {
				return 0, err
			}
			if feat, err = scaler.Transform(feat); err != nil {
				return 0, err
			}
			return net.Score(feat)
		}
		return p, nil
	}
}

// heuristicScorer builds the Table I heuristic over a static view.
func heuristicScorer(method Method, view *graph.StaticView) (heuristics.Scorer, error) {
	switch method {
	case CN:
		return heuristics.CommonNeighbors(view), nil
	case Jaccard:
		return heuristics.Jaccard(view), nil
	case PA:
		return heuristics.PreferentialAttachment(view), nil
	case AA:
		return heuristics.AdamicAdar(view), nil
	case RA:
		return heuristics.ResourceAllocation(view), nil
	case RWRA:
		return heuristics.RWRA(view), nil
	case Katz:
		return heuristics.Katz(view, heuristics.KatzOptions{Beta: 0.001})
	case RandomWalk:
		return heuristics.LocalRandomWalk(view, heuristics.RandomWalkOptions{})
	default:
		return nil, fmt.Errorf("%w: %d is not a heuristic", ErrUnknownMethod, int(method))
	}
}

// trainScorer handles the eight unsupervised ranking methods: the training
// split only selects a threshold; inference scores use the full network.
func trainScorer(g, history *Graph, ds *eval.Dataset, method Method) (*Predictor, error) {
	histScorer, err := heuristicScorer(method, history.Static())
	if err != nil {
		return nil, err
	}
	trainScores := make([]float64, len(ds.Train))
	for i, s := range ds.Train {
		trainScores[i] = histScorer.Score(s.Pair.U, s.Pair.V)
	}
	th, err := eval.BestThreshold(trainScores, eval.Labels(ds.Train))
	if err != nil {
		return nil, fmt.Errorf("ssflp: %v threshold: %w", method, err)
	}
	fullScorer, err := heuristicScorer(method, g.Static())
	if err != nil {
		return nil, err
	}
	return &Predictor{
		method:    method,
		threshold: th,
		state: &predictorState{
			Version: predictorStateVersion, Method: method, Threshold: th,
		},
		score: func(u, v NodeID) (float64, error) {
			return fullScorer.Score(u, v), nil
		},
		bindScore: heuristicBind(method),
	}, nil
}

// trainNMF handles the matrix-factorization baseline.
func trainNMF(g, history *Graph, ds *eval.Dataset, opts TrainOptions) (*Predictor, error) {
	histModel, err := nmf.Train(history.Static(), nmf.Options{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("ssflp: nmf train: %w", err)
	}
	trainScores := make([]float64, len(ds.Train))
	for i, s := range ds.Train {
		trainScores[i] = histModel.Score(s.Pair.U, s.Pair.V)
	}
	th, err := eval.BestThreshold(trainScores, eval.Labels(ds.Train))
	if err != nil {
		return nil, fmt.Errorf("ssflp: nmf threshold: %w", err)
	}
	fullModel, err := nmf.Train(g.Static(), nmf.Options{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("ssflp: nmf full train: %w", err)
	}
	nmfState := fullModel.State()
	return &Predictor{
		method:    NMF,
		threshold: th,
		state: &predictorState{
			Version: predictorStateVersion, Method: NMF, Threshold: th, NMF: &nmfState,
		},
		score: func(u, v NodeID) (float64, error) {
			return fullModel.Score(u, v), nil
		},
		bindScore: nmfBind(fullModel),
	}, nil
}

// Metrics is an AUC/F1 pair as reported in Table III.
type Metrics struct {
	AUC float64
	F1  float64
}

// EvaluateMethod runs the paper's evaluation protocol (70/30 split at the
// last timestamp, balanced negatives) for one method on the dynamic network
// g and reports test AUC and F1.
func EvaluateMethod(g *Graph, method Method, opts TrainOptions) (Metrics, error) {
	label, ok := methodLabels[method]
	if !ok {
		return Metrics{}, fmt.Errorf("%w: %d", ErrUnknownMethod, int(method))
	}
	opts = opts.withDefaults()
	run, err := experiments.NewRun(label, g, experiments.RunOptions{
		K:             opts.K,
		Epochs:        opts.Epochs,
		MaxPositives:  opts.MaxPositives,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		TrainFraction: opts.TrainFraction,
	})
	if err != nil {
		return Metrics{}, err
	}
	m, err := experiments.MethodByName(label)
	if err != nil {
		return Metrics{}, err
	}
	res, err := m.Evaluate(run)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{AUC: res.AUC, F1: res.F1}, nil
}

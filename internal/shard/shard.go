// Package shard partitions the served graph across N shards and routes
// queries to them with explicit partial-failure semantics. The moment there
// is more than one shard, the dominant engineering problem is no longer
// throughput but partial failure: a shard can be slow, flapping, or dead,
// and the router must degrade gracefully instead of letting one bad shard
// take the whole query path down.
//
// The package is transport-agnostic: Client is the per-shard contract
// (in-process wrappers around the epoch server core and HTTPClient both
// implement it), Router owns placement and fan-out, and the robustness layer
// — per-shard attempt deadlines, retries with exponential backoff and full
// jitter (idempotent reads only), hedged reads at the p95 latency mark, and
// a per-shard circuit breaker — lives between them. FaultClient decorates
// any Client with deterministic, seeded fault injection for tests and soaks.
//
// Ownership is by node-label hash: Owner(label, n) names the shard that owns
// a node, PairOwner the shard that serves a pair. Ingest dual-writes edges
// whose endpoints hash to different shards, so every shard holds all edges
// incident to its owned nodes and the SSF extractor's h-hop neighborhoods
// stay shard-local.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
)

// Edge is one edge arrival routed through the shard layer. A nil Ts means
// "now" — note that in a sharded topology each owner resolves "now" against
// its own graph, so cross-shard determinism needs explicit timestamps.
type Edge struct {
	U  string `json:"u"`
	V  string `json:"v"`
	Ts *int64 `json:"ts,omitempty"`
}

// ScoreResult is one scored pair as answered by a shard.
type ScoreResult struct {
	U         string  `json:"u"`
	V         string  `json:"v"`
	Score     float64 `json:"score"`
	Predicted bool    `json:"predicted"`
}

// Candidate is one absent-link candidate from a shard's local top-N.
type Candidate struct {
	U     string  `json:"u"`
	V     string  `json:"v"`
	Score float64 `json:"score"`
}

// TopResult is one shard's local answer to a top-N query.
type TopResult struct {
	Candidates []Candidate `json:"candidates"`
	Sampled    bool        `json:"sampled"`
}

// IngestResult reports one shard's application of an ingest sub-batch.
type IngestResult struct {
	Applied int    `json:"applied"`
	Durable bool   `json:"durable"`
	Epoch   uint64 `json:"epoch"`
	LSN     uint64 `json:"lsn,omitempty"`
}

// HealthInfo is one shard's health snapshot.
type HealthInfo struct {
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch"`
	Nodes int    `json:"nodes"`
	Links int    `json:"links"`
}

// Client is the transport-agnostic contract one shard exposes to the router.
// Implementations must honor context cancellation and deadlines on every
// method and classify failures: transport faults, timeouts and shard-side
// storage errors are reported via errors wrapping ErrUnavailable (the router
// retries and breaks on those), while domain errors (unknown node, invalid
// pair) are returned as-is and treated as healthy answers.
type Client interface {
	// Score answers one pair. The shard must own the pair per PairOwner.
	Score(ctx context.Context, u, v string) (ScoreResult, error)
	// Top returns the shard's local n best absent-link candidates.
	Top(ctx context.Context, n int) (TopResult, error)
	// Batch scores many pairs, preserving input order.
	Batch(ctx context.Context, pairs [][2]string) ([]ScoreResult, error)
	// Ingest applies edge arrivals. Not idempotent: the router never
	// retries it, so implementations need no dedup.
	Ingest(ctx context.Context, edges []Edge) (IngestResult, error)
	// Health reports readiness and graph size.
	Health(ctx context.Context) (HealthInfo, error)
}

// ErrUnavailable classifies a shard failure as infrastructure, not domain:
// transport errors, timeouts, 5xx answers, open circuit breakers. Callers
// test with IsUnavailable; the router retries idempotent reads on it and
// feeds it to the breaker as a failure.
var ErrUnavailable = errors.New("shard unavailable")

// ErrNotFound classifies "unknown node" answers — a healthy shard answered,
// the node just does not exist there.
var ErrNotFound = errors.New("unknown node")

// Unavailable wraps err so IsUnavailable reports true, preserving the cause
// for errors.Is/As and logs.
func Unavailable(err error) error {
	if err == nil {
		return ErrUnavailable
	}
	return fmt.Errorf("%w: %w", ErrUnavailable, err)
}

// IsUnavailable reports whether err is an infrastructure failure that the
// router may retry (reads) and must count against the shard's breaker.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// Owner returns the shard (0..n-1) owning the node with the given label.
// FNV-1a keeps placement stable across processes and languages; n must be
// positive.
func Owner(label string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return int(h.Sum64() % uint64(n))
}

// PairOwner returns the shard that serves queries for the pair (u, v). The
// pair is anchored at its lexicographically smaller label so (u, v) and
// (v, u) route identically; the owning shard holds every edge incident to
// that anchor node thanks to ingest dual-writes.
func PairOwner(u, v string, n int) int {
	if v < u {
		u = v
	}
	return Owner(u, n)
}
